"""Sharding and the per-shard KV state machine.

``repro.kv`` splits the key space over N independent Raft groups.  The
key → group mapping is a consistent-hash ring (each group owns
``vnodes`` points on a 64-bit ring, a key lands on the first point
clockwise of its hash), so growing the group count moves only ``1/N`` of
the keys — the property that matters once the store is resharded between
experiment sweeps.  The group → replica-set mapping is a simple stride
over the rank space (group ``g`` lives on ranks ``g, g+1, .., g+rf-1``
mod n), which keeps leaders spread across ranks.

:class:`KVStateMachine` is the deterministic command interpreter every
replica of a group runs over the committed log: put / cas / delete (and
the leader's no-ops are filtered out before they get here).  Client
sessions get exactly-once application: each command carries a
``(client_id, seq)`` uid, replays of an already-applied seq return the
retained first result instead of re-executing — that is what makes a
client retry after a redirect or leader crash safe.

Two mechanisms added for snapshots and live moves:

- the machine is fully serializable (:meth:`KVStateMachine.serialize` /
  :meth:`~KVStateMachine.deserialize`), *including* the client-session
  table and applied-uid set — a replica installed from a snapshot dedups
  retries exactly like one that replayed the log;
- the ring carries an **epoch**: :meth:`ShardMap.reassign` hands one
  group's ring points to another group and bumps the epoch.  Clients
  route by an immutable :class:`RingView` snapshot and stamp its epoch
  on every request; servers reject mismatches so a stale client
  refetches the map instead of reading keys a move took away.  The move
  itself is sequenced through three replicated admin commands —
  ``OP_SEAL`` (freeze the source range deterministically at one log
  position), ``OP_MERGE`` (install the sealed range at the target) and
  ``OP_PURGE`` (drop the source copy) — see :mod:`repro.kv.move`.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..sim.core import SimulationError

__all__ = ["ShardMap", "RingView", "KVStateMachine", "Command",
           "encode_command", "decode_command", "snapshot_keys", "CodecError",
           "OP_NOOP", "OP_PUT", "OP_CAS", "OP_DELETE",
           "OP_SEAL", "OP_MERGE", "OP_PURGE",
           "ST_OK", "ST_MISS", "ST_CAS_FAIL", "ST_SEALED"]

OP_NOOP = 0
OP_PUT = 1
OP_CAS = 3
OP_DELETE = 4
#: admin commands (replicated through the same log as data commands)
OP_SEAL = 5    # freeze the group's range: writes after this apply as ST_SEALED
OP_MERGE = 6   # install a serialized machine (value = snapshot blob)
OP_PURGE = 7   # drop the group's data after a completed hand-off

#: state-machine result codes (shared with the client protocol)
ST_OK = 0
ST_MISS = 1
ST_CAS_FAIL = 2
#: write rejected because the range is sealed/moved — same code the
#: server uses for an epoch mismatch, so clients handle both by
#: refetching the ring and retrying (RESP_WRONG_EPOCH in store.py)
ST_SEALED = 5


class CodecError(SimulationError):
    """A wire frame's declared lengths disagree with its actual size.

    Raised instead of silently mis-splitting key/value/entry boundaries
    when a payload is truncated or carries a corrupt length field.  The
    store drops such frames and counts them (``kv.codec_errors``) —
    a malformed message must never crash a replica or, worse, apply a
    half-parsed command.
    """


#: op u8, client u32, seq u64, klen u16, vlen u32, elen u32
_CMD = struct.Struct("<BIQHII")


@dataclass(frozen=True)
class Command:
    """One replicated state-machine command."""

    op: int
    client: int
    seq: int
    key: bytes
    value: bytes = b""
    expected: bytes = b""  # CAS comparand

    @property
    def uid(self) -> Tuple[int, int]:
        return (self.client, self.seq)


def encode_command(cmd: Command) -> bytes:
    return (_CMD.pack(cmd.op, cmd.client, cmd.seq, len(cmd.key),
                      len(cmd.value), len(cmd.expected))
            + cmd.key + cmd.value + cmd.expected)


def decode_command(raw: bytes) -> Command:
    if len(raw) < _CMD.size:
        raise CodecError(
            f"command frame truncated: {len(raw)} < header {_CMD.size}")
    op, client, seq, klen, vlen, elen = _CMD.unpack_from(raw, 0)
    if len(raw) != _CMD.size + klen + vlen + elen:
        raise CodecError(
            f"command frame length {len(raw)} != declared "
            f"{_CMD.size}+{klen}+{vlen}+{elen}")
    off = _CMD.size
    key = raw[off:off + klen]
    off += klen
    value = raw[off:off + vlen]
    off += vlen
    expected = raw[off:off + elen]
    return Command(op=op, client=client, seq=seq, key=key, value=value,
                   expected=expected)


def _ring_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "little")


class RingView:
    """An immutable client-side snapshot of the ring at one epoch.

    Clients route with a view and stamp ``view.epoch`` on every request;
    when a move bumps the authoritative :class:`ShardMap` epoch the
    server answers ``RESP_WRONG_EPOCH`` and the client refetches a fresh
    view.  Keeping the view immutable is what makes the redirect honest:
    a client never silently picks up a flip it was not told about.
    """

    __slots__ = ("epoch", "_ring_keys", "_ring_groups")

    def __init__(self, epoch: int, ring_keys, ring_groups):
        self.epoch = epoch
        self._ring_keys = tuple(ring_keys)
        self._ring_groups = tuple(ring_groups)

    def group_of(self, key: bytes) -> int:
        h = _ring_hash(bytes(key))
        i = bisect.bisect_right(self._ring_keys, h)
        if i == len(self._ring_keys):
            i = 0
        return self._ring_groups[i]


class ShardMap:
    """Consistent-hash key → group ring plus the replica placement.

    The ring is mutable in exactly one way: :meth:`reassign` relabels
    every point one group owns to another group and bumps :attr:`epoch`.
    Replica placement is static — a "moved" group's ranks keep their
    (sealed, soon purged) Raft group; the *keys* move, not the ranks.
    """

    def __init__(self, n_groups: int, n_ranks: int, rf: int = 3,
                 vnodes: int = 64):
        if n_groups < 1:
            raise SimulationError("need at least one shard group")
        if not 1 <= rf <= n_ranks:
            raise SimulationError(
                f"replication factor {rf} does not fit {n_ranks} ranks")
        self.n_groups = n_groups
        self.n_ranks = n_ranks
        self.rf = rf
        self.vnodes = vnodes
        self.epoch = 0
        #: (epoch, src_group, dst_group) hand-offs, oldest first
        self.moves: List[Tuple[int, int, int]] = []
        points: List[Tuple[int, int]] = []
        for g in range(n_groups):
            for v in range(vnodes):
                points.append((_ring_hash(f"shard{g}:{v}".encode()), g))
        points.sort()
        self._ring_keys = [h for h, _ in points]
        self._ring_groups = [g for _, g in points]

    def group_of(self, key: bytes) -> int:
        """The Raft group that owns ``key`` (first ring point clockwise)."""
        h = _ring_hash(bytes(key))
        i = bisect.bisect_right(self._ring_keys, h)
        if i == len(self._ring_keys):
            i = 0
        return self._ring_groups[i]

    def freeze(self) -> RingView:
        """The current ring as an immutable, epoch-stamped client view."""
        return RingView(self.epoch, self._ring_keys, self._ring_groups)

    def reassign(self, src_group: int, dst_group: int) -> int:
        """Hand every ring point of ``src_group`` to ``dst_group``.

        Returns the new epoch.  This is the *flip* step of a live move —
        data must already be installed at the target (see
        :mod:`repro.kv.move`); the flip itself is metadata-only.
        """
        for g in (src_group, dst_group):
            if not 0 <= g < self.n_groups:
                raise SimulationError(f"no such group {g}")
        if src_group == dst_group:
            raise SimulationError("cannot reassign a group to itself")
        self._ring_groups = [dst_group if g == src_group else g
                             for g in self._ring_groups]
        self.epoch += 1
        self.moves.append((self.epoch, src_group, dst_group))
        return self.epoch

    def replicas(self, group: int) -> List[int]:
        """Replica ranks for ``group`` (stride placement, leader-spread)."""
        if not 0 <= group < self.n_groups:
            raise SimulationError(f"no such group {group}")
        return [(group + i) % self.n_ranks for i in range(self.rf)]

    def groups_on(self, rank: int) -> List[int]:
        """Groups that place a replica on ``rank``."""
        return [g for g in range(self.n_groups)
                if rank in self.replicas(g)]

    def key_distribution(self, keys) -> Dict[int, int]:
        """How many of ``keys`` land on each group (balance diagnostics)."""
        counts = {g: 0 for g in range(self.n_groups)}
        for key in keys:
            counts[self.group_of(key)] += 1
        return counts


#: snapshot blob header: ops_applied u64, n_keys u32, n_sessions u32,
#: n_uids u32, sealed u8
_SNAP_HDR = struct.Struct("<QIIIB")
#: per-key record: klen u16, vlen u32, version u64, present u8
_SNAP_KEY = struct.Struct("<HIQB")
#: per-session record: client u32, seq u64, status u8, rlen u32
_SNAP_SESS = struct.Struct("<IQBI")
#: per-uid record: client u32, seq u64
_SNAP_UID = struct.Struct("<IQ")


class KVStateMachine:
    """Deterministic KV interpreter with exactly-once client sessions."""

    def __init__(self, group: int):
        self.group = group
        self.data: Dict[bytes, bytes] = {}
        self.version: Dict[bytes, int] = {}
        #: per-client session: newest applied seq and its retained result
        self._session_seq: Dict[int, int] = {}
        self._session_result: Dict[int, Tuple[int, bytes]] = {}
        #: every uid ever applied — the acked-write survival checker reads
        #: this (bounded by the workload size, not the key space)
        self.applied_uids: Set[Tuple[int, int]] = set()
        self.ops_applied = 0
        self.dup_skips = 0
        #: set by OP_SEAL: the range is frozen for a hand-off, data
        #: writes apply as ST_SEALED without touching state or sessions
        self.sealed = False

    def is_duplicate(self, cmd: Command) -> bool:
        return self._session_seq.get(cmd.client, -1) >= cmd.seq

    def retained_result(self, cmd: Command) -> Optional[Tuple[int, bytes]]:
        """The first-application result for a replayed session seq (None
        when the replay is older than the retained newest)."""
        if self._session_seq.get(cmd.client, -1) == cmd.seq:
            return self._session_result.get(cmd.client)
        return None

    def apply(self, cmd: Command) -> Tuple[int, bytes]:
        """Apply one committed command; returns ``(status, value)``.

        Replays (same client, seq <= newest applied) are not re-executed:
        the retained result is returned so the caller can still answer
        the client.
        """
        if cmd.op == OP_NOOP:
            return (ST_OK, b"")
        if self.is_duplicate(cmd):
            self.dup_skips += 1
            return self.retained_result(cmd) or (ST_OK, b"")
        if self.sealed and cmd.op in (OP_PUT, OP_CAS, OP_DELETE):
            # no session record: the client will retry the same uid at
            # the new owner after the epoch flip, and that retry must
            # apply there, not dedup against a rejection
            return (ST_SEALED, b"")
        if cmd.op == OP_SEAL:
            self.sealed = True
            result = (ST_OK, b"")
        elif cmd.op == OP_MERGE:
            self.merge_from(cmd.value)
            result = (ST_OK, b"")
        elif cmd.op == OP_PURGE:
            self.data.clear()
            self.version.clear()
            self._session_seq.clear()
            self._session_result.clear()
            self.applied_uids.clear()
            self.sealed = False
            result = (ST_OK, b"")
            # fall through: purge records the admin session *after* the
            # clear, so a purge retry still dedups
        elif cmd.op == OP_PUT:
            self.data[cmd.key] = cmd.value
            self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
            result = (ST_OK, b"")
        elif cmd.op == OP_CAS:
            current = self.data.get(cmd.key)
            if current is not None and current == cmd.expected:
                self.data[cmd.key] = cmd.value
                self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
                result = (ST_OK, b"")
            elif current is None:
                result = (ST_MISS, b"")
            else:
                result = (ST_CAS_FAIL, current)
        elif cmd.op == OP_DELETE:
            existed = self.data.pop(cmd.key, None)
            if existed is not None:
                self.version[cmd.key] = self.version.get(cmd.key, 0) + 1
            result = (ST_OK if existed is not None else ST_MISS, b"")
        else:
            raise SimulationError(f"unknown kv op {cmd.op}")
        self._session_seq[cmd.client] = cmd.seq
        self._session_result[cmd.client] = result
        self.applied_uids.add(cmd.uid)
        self.ops_applied += 1
        return result

    def get(self, key: bytes) -> Optional[bytes]:
        return self.data.get(key)

    # ------------------------------------------------------------- snapshot
    def serialize(self) -> bytes:
        """The whole machine as one deterministic blob.

        Iteration orders are sorted, so every replica at the same apply
        point produces byte-identical blobs — that is what lets golden
        audits compare snapshots and lets install order be deterministic.
        Versions of *deleted* keys are kept (present=0 records) so the
        one-sided readers' monotonic-version guard survives an install.
        """
        parts = [b""]  # placeholder for the header
        n_keys = 0
        for key in sorted(self.version):
            value = self.data.get(key)
            present = value is not None
            parts.append(_SNAP_KEY.pack(len(key), len(value) if present else 0,
                                        self.version[key], 1 if present else 0))
            parts.append(key)
            if present:
                parts.append(value)
            n_keys += 1
        for client in sorted(self._session_seq):
            status, result = self._session_result.get(client, (ST_OK, b""))
            parts.append(_SNAP_SESS.pack(client, self._session_seq[client],
                                         status, len(result)))
            parts.append(result)
        for client, seq in sorted(self.applied_uids):
            parts.append(_SNAP_UID.pack(client, seq))
        parts[0] = _SNAP_HDR.pack(self.ops_applied, n_keys,
                                  len(self._session_seq),
                                  len(self.applied_uids),
                                  1 if self.sealed else 0)
        return b"".join(parts)

    @classmethod
    def deserialize(cls, group: int, blob: bytes) -> "KVStateMachine":
        """Rebuild a machine from :meth:`serialize` output."""
        sm = cls(group)
        (sm.ops_applied, sm.sealed), _ = _decode_snapshot(
            blob, sm.data, sm.version, sm._session_seq, sm._session_result,
            sm.applied_uids)
        return sm

    def merge_from(self, blob: bytes) -> None:
        """Overlay another machine's serialized state (the OP_MERGE body).

        Keys/versions overwrite, sessions keep the newest seq per client
        (safe because client sessions are serial — one op in flight —
        so the newest seq's retained result is the only one a retry can
        still ask for), applied uids union.  The source's sealed flag is
        ignored: the *target* keeps serving.
        """
        data: Dict[bytes, bytes] = {}
        version: Dict[bytes, int] = {}
        sess_seq: Dict[int, int] = {}
        sess_res: Dict[int, Tuple[int, bytes]] = {}
        uids: Set[Tuple[int, int]] = set()
        (ops, _sealed), _ = _decode_snapshot(blob, data, version,
                                             sess_seq, sess_res, uids)
        self.data.update(data)
        self.version.update(version)
        for client, seq in sess_seq.items():
            if seq > self._session_seq.get(client, -1):
                self._session_seq[client] = seq
                self._session_result[client] = sess_res.get(client, (ST_OK, b""))
        self.applied_uids |= uids
        self.ops_applied += ops

    def stats(self) -> Dict[str, object]:
        return {
            "group": self.group,
            "keys": len(self.data),
            "ops_applied": self.ops_applied,
            "dup_skips": self.dup_skips,
            "sessions": len(self._session_seq),
            "sealed": self.sealed,
        }


def snapshot_keys(blob: bytes) -> List[bytes]:
    """Keys recorded in a snapshot blob, in blob (sorted) order —
    the store mirrors exactly these into slots after an OP_MERGE."""
    data: Dict[bytes, bytes] = {}
    version: Dict[bytes, int] = {}
    _decode_snapshot(blob, data, version, {}, {}, set())
    return list(version)


def _decode_snapshot(blob, data, version, sess_seq, sess_res, uids):
    """Decode a machine snapshot into the caller's containers.

    Returns ``((ops_applied, sealed), end_offset)``; raises
    :class:`CodecError` when any declared length walks off the blob.
    """
    if len(blob) < _SNAP_HDR.size:
        raise CodecError(f"snapshot truncated: {len(blob)} bytes")
    ops, n_keys, n_sess, n_uids, sealed = _SNAP_HDR.unpack_from(blob, 0)
    off = _SNAP_HDR.size
    try:
        for _ in range(n_keys):
            klen, vlen, ver, present = _SNAP_KEY.unpack_from(blob, off)
            off += _SNAP_KEY.size
            if off + klen + vlen > len(blob):
                raise CodecError("snapshot key record overruns blob")
            key = blob[off:off + klen]
            off += klen
            version[key] = ver
            if present:
                data[key] = blob[off:off + vlen]
                off += vlen
        for _ in range(n_sess):
            client, seq, status, rlen = _SNAP_SESS.unpack_from(blob, off)
            off += _SNAP_SESS.size
            if off + rlen > len(blob):
                raise CodecError("snapshot session record overruns blob")
            sess_seq[client] = seq
            sess_res[client] = (status, blob[off:off + rlen])
            off += rlen
        for _ in range(n_uids):
            client, seq = _SNAP_UID.unpack_from(blob, off)
            off += _SNAP_UID.size
            uids.add((client, seq))
    except struct.error as exc:
        raise CodecError(f"snapshot truncated mid-record: {exc}") from exc
    if off != len(blob):
        raise CodecError(
            f"snapshot has {len(blob) - off} trailing bytes")
    return (ops, bool(sealed)), off
