"""The per-rank KV server: Raft groups, state machines and the wire.

One :class:`KVNode` runs on every rank (ranks that replicate no group
still pump the parcel runtime so co-located clients get responses).  All
KV traffic — Raft AppendEntries/RequestVote rounds, client requests and
responses — rides the runtime's parcel machinery over
:class:`~repro.runtime.transport.PhotonTransport`, i.e. Photon PWC eager
sends surfaced at the target by completion-ledger probes, with the
rendezvous path kicking in automatically for oversized AE batches.

The server loop is the **single wire writer** for a rank's server side:
handlers invoked by parcel dispatch only mutate state and enqueue
outgoing messages (Raft outboxes, the response queue); the loop drains
them onto the transport.  That keeps the photon endpoint free of
re-entrant server generators — co-located clients still issue their own
requests and one-sided reads concurrently, exactly like every other
multi-process workload in this repo.

One-sided read arm: each replica exposes a registered *slot table* per
group.  Slots are assigned to keys in committed-log order, so every
replica of a group assigns identical slot indices, and the leader's
slots are kept current at apply time.  A client resolves ``key →
(addr, rkey, slot)`` once via a ``loc`` RPC and afterwards reads the
value with a raw ``get_pwc`` — the RDMA arm of the RDMA-vs-RPC
comparison (see PAPERS.md).
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..runtime.actions import ActionRegistry
from ..runtime.parcel import Parcel
from ..runtime.scheduler import Runtime
from ..runtime.transport import PeerDownError, PhotonTransport
from ..sim.core import SimulationError
from .raft import LEADER, RaftConfig, RaftNode, decode_msg
from .shard import (Command, CodecError, KVStateMachine, OP_CAS, OP_DELETE,
                    OP_MERGE, OP_NOOP, OP_PURGE, OP_PUT, OP_SEAL, ShardMap,
                    ST_MISS, ST_OK, decode_command, snapshot_keys)

__all__ = ["KVConfig", "KVNode", "build_kv",
           "ACT_RAFT", "ACT_REQ", "ACT_RESP",
           "REQ_WRITE", "REQ_READ", "REQ_LOC", "REQ_SNAP",
           "RESP_OK", "RESP_MISS", "RESP_CAS_FAIL", "RESP_NOT_LEADER",
           "RESP_NO_LEASE", "RESP_WRONG_EPOCH", "RESP_FAIL",
           "SLOT_HDR", "SLOT_PRESENT", "SLOT_OVERSIZE",
           "pack_request", "unpack_request", "pack_response",
           "unpack_response", "pack_loc", "unpack_loc"]

ACT_RAFT = "kv.raft"
ACT_REQ = "kv.req"
ACT_RESP = "kv.resp"

REQ_WRITE = 0
REQ_READ = 1
REQ_LOC = 2
#: fetch a sealed group's serialized machine (the move data plane)
REQ_SNAP = 3

#: response statuses 0..2 coincide with the state-machine ST_* codes
RESP_OK = 0
RESP_MISS = 1
RESP_CAS_FAIL = 2
RESP_NOT_LEADER = 3
RESP_NO_LEASE = 4
#: the client's ring epoch is stale (or the range is sealed mid-move):
#: refetch the shard map and retry — numerically equal to ST_SEALED so
#: sealed-apply results pass straight through to the client
RESP_WRONG_EPOCH = 5
RESP_FAIL = 255

#: request frame: kind u8, client u32, seq u64, group u16, epoch u32
_REQ = struct.Struct("<BIQHI")
#: response frame: status u8, leader_hint i16, client u32, seq u64, vlen u32
_RESP = struct.Struct("<BhIQI")
#: loc payload: leader u16, slot u32, slot_size u32, addr u64, rkey u64
_LOC = struct.Struct("<HIIQQ")
#: slot header: version u64, length u32, flags u32
_SLOT = struct.Struct("<QII")
SLOT_HDR = _SLOT.size
SLOT_PRESENT = 1
SLOT_OVERSIZE = 2


def pack_request(kind: int, client: int, seq: int, group: int, epoch: int,
                 body: bytes) -> bytes:
    return _REQ.pack(kind, client, seq, group, epoch) + body


def unpack_request(raw: bytes) -> Tuple[int, int, int, int, int, bytes]:
    if len(raw) < _REQ.size:
        raise CodecError(
            f"request frame truncated: {len(raw)} < {_REQ.size}")
    kind, client, seq, group, epoch = _REQ.unpack_from(raw, 0)
    return kind, client, seq, group, epoch, raw[_REQ.size:]


def pack_response(status: int, hint: int, client: int, seq: int,
                  value: bytes = b"") -> bytes:
    return _RESP.pack(status, hint, client, seq, len(value)) + value


def unpack_response(raw: bytes) -> Tuple[int, int, int, int, bytes]:
    status, hint, client, seq, vlen = _RESP.unpack_from(raw, 0)
    return status, hint, client, seq, raw[_RESP.size:_RESP.size + vlen]


def pack_loc(leader: int, slot: int, slot_size: int, addr: int,
             rkey: int) -> bytes:
    return _LOC.pack(leader, slot, slot_size, addr, rkey)


def unpack_loc(raw: bytes) -> Tuple[int, int, int, int, int]:
    return _LOC.unpack_from(raw, 0)


@dataclass(frozen=True)
class KVConfig:
    """Store-wide configuration (identical on every rank)."""

    #: Raft groups the key ring is split over
    n_groups: int = 2
    #: replicas per group
    rf: int = 3
    raft: RaftConfig = field(default_factory=RaftConfig)
    #: bytes per one-sided read slot (header + value capacity)
    slot_size: int = 160
    #: slots per group table; keys beyond this stay RPC-only
    slots_per_group: int = 1024
    #: host cost charged per applied state-machine command (ns)
    apply_cost_ns: int = 400
    #: host cost charged when a replica serializes its machine into a
    #: snapshot, and when it deserializes + swaps in an installed one
    snapshot_cost_ns: int = 20_000
    install_cost_ns: int = 40_000
    #: server-loop idle backoff bounds (ns); the loop doubles from base
    #: to max while nothing is flowing so quiet stretches don't spin
    idle_backoff_ns: int = 400
    idle_backoff_max_ns: int = 12_800
    #: poll period while this rank's endpoint is crashed (ns)
    dead_poll_ns: int = 100_000
    #: response-hub entries unclaimed for this long are garbage-collected
    #: (late replies to clients that gave up); must comfortably exceed
    #: the largest client per-attempt timeout or a slow client's answer
    #: could be swept while it still polls
    hub_ttl_ns: int = 10_000_000

    def validate(self) -> None:
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.rf < 1:
            raise ValueError("rf must be >= 1")
        if self.slot_size <= SLOT_HDR:
            raise ValueError(f"slot_size must exceed the {SLOT_HDR}B header")
        for name in ("slots_per_group", "apply_cost_ns", "snapshot_cost_ns",
                     "install_cost_ns", "idle_backoff_ns",
                     "idle_backoff_max_ns", "dead_poll_ns", "hub_ttl_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        self.raft.validate()

    @property
    def value_limit(self) -> int:
        """Largest value the one-sided slot path can serve."""
        return self.slot_size - SLOT_HDR


def register_actions(registry: ActionRegistry) -> None:
    """Install the KV handler table (same ids on every rank).

    Handlers only mutate node state; all wire writes happen in the
    server loop (see module docstring).
    """

    def raft_handler(rt, src, payload):
        rt.kv.handle_raft(src, payload)

    def req_handler(rt, src, payload):
        rt.kv.handle_request(src, payload)

    def resp_handler(rt, src, payload):
        rt.kv.handle_response(src, payload)

    registry.register(ACT_RAFT, raft_handler)
    registry.register(ACT_REQ, req_handler)
    registry.register(ACT_RESP, resp_handler)


class KVNode:
    """One rank's slice of the store (server loop + client hub)."""

    def __init__(self, cluster, rank: int, runtime: Runtime, photon,
                 shard_map: ShardMap, config: Optional[KVConfig] = None):
        self.config = config or KVConfig()
        self.config.validate()
        self.cluster = cluster
        self.rank = rank
        self.runtime = runtime
        self.photon = photon
        self.shard_map = shard_map
        self.env = cluster.env
        self.counters = cluster.scope(rank)
        #: failure-detector handle (attach via attach_health)
        self.monitor = None
        self.raft: Dict[int, RaftNode] = {}
        self.machines: Dict[int, KVStateMachine] = {}
        self.tables: Dict[int, object] = {}       # group -> PhotonBuffer
        self._slot_of: Dict[int, Dict[bytes, int]] = {}
        self._next_slot: Dict[int, int] = {}
        #: per-group snapshots_taken high-water (obs mirror + cost charge)
        self._snap_seen: Dict[int, int] = {}
        for g in shard_map.groups_on(rank):
            self._seed_group(g)
            # boot-time tables are registered eagerly (a restart defers
            # registration until the replica has state to publish)
            self.tables[g] = photon.buffer(
                self.config.slots_per_group * self.config.slot_size)
        #: leader side: (group, log index) -> (reply rank, client, seq)
        self._pending: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        self._pending_uid: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: outgoing (dst, action, payload) drained by the server loop
        self._tx: Deque[Tuple[int, str, bytes]] = deque()
        #: client hub: (client, seq) -> (status, hint, value, arrived_ns);
        #: entries a client never claims (it gave up, or a retry already
        #: completed) are swept once they outlive ``hub_ttl_ns``
        self.hub: Dict[Tuple[int, int], Tuple[int, int, bytes, int]] = {}
        self._hub_gc_due = 0
        # local high-water caches so the per-tick set_max telemetry only
        # pays a counter call when a peak actually moves
        self._log_peak = 0
        self._base_peak = 0
        self.running = False
        self._proc = None

    def _seed_group(self, g: int) -> None:
        """Create the group's RaftNode + machine and arm snapshotting.

        RNG streams are cached by name in the registry, so a reseed
        after a restart *continues* the same deterministic jitter stream
        instead of replaying it from the start.
        """
        rng_space = self.cluster.rng.namespace("kv.raft")
        replicas = self.shard_map.replicas(g)
        rn = RaftNode(g, self.rank, replicas, self.config.raft,
                      rng_space.stream(f"g{g}.r{self.rank}"),
                      now=self.env.now)
        rn.snapshot_fn = lambda g=g: self.machines[g].serialize()
        self.raft[g] = rn
        self.machines[g] = KVStateMachine(g)
        self._slot_of[g] = {}
        self._next_slot[g] = 0
        self._snap_seen[g] = 0

    # ------------------------------------------------------------- restart
    def on_crash(self) -> None:
        """Drop all volatile state (the chaos controller calls this right
        after ``photon.crash_local``).  The server loop keeps running in
        its dead-poll stance; the rank serves nothing until reseeded."""
        self.raft.clear()
        self.machines.clear()
        self.tables.clear()
        self._slot_of.clear()
        self._next_slot.clear()
        self._snap_seen.clear()
        self._pending.clear()
        self._pending_uid.clear()
        self._tx.clear()
        self.hub.clear()
        self.counters.add("kv.crashes")

    def reseed(self) -> None:
        """Rebuild empty replicas after a chaos ``restart`` event.

        The reborn followers nack the leader's first AppendEntries with
        a last_index=0 hint, the leader jumps below its ``base_index``
        and streams its snapshot — rejoin *is* the InstallSnapshot flow,
        there is no separate recovery path.  Slot tables are deliberately
        **not** registered here: a table appears only once the replica
        has installed a snapshot (or applied its first command), so a
        one-sided reader can never observe a half-built table.
        """
        for g in self.shard_map.groups_on(self.rank):
            self._seed_group(g)
        self.counters.add("kv.reseeds")

    # ---------------------------------------------------------------- wiring
    def attach_health(self, monitor) -> None:
        """Consume the rank's failure detector: leader-death verdicts
        short-circuit election timeouts, joins clear the dead set."""
        self.monitor = monitor
        monitor.on_dead(self._on_peer_dead)
        monitor.on_join(self._on_peer_join)

    def _on_peer_dead(self, peer: int) -> None:
        if peer == self.rank or not self.photon.alive:
            return
        now = self.env.now
        for rn in self.raft.values():
            rn.on_peer_dead(peer, now)
        self.counters.add("kv.peer_dead_events")

    def _on_peer_join(self, peer: int) -> None:
        for rn in self.raft.values():
            rn.on_peer_join(peer)

    def start(self) -> None:
        """Spawn the server loop (idempotent)."""
        if self.running:
            return
        self.running = True
        self._proc = self.env.process(self._serve(),
                                      name=f"kv{self.rank}:serve")

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------- handlers
    def handle_raft(self, src: int, payload: bytes) -> None:
        try:
            msg = decode_msg(payload)
        except CodecError:
            # malformed frames are dropped, never applied half-parsed;
            # Raft's retransmit machinery covers the loss
            self.counters.add("kv.codec_errors")
            return
        rn = self.raft.get(msg.group)
        if rn is None:
            self.counters.add("kv.misrouted_raft")
            return
        was_leader = rn.role == LEADER
        rn.on_message(msg, self.env.now)
        self.counters.add("kv.raft_msgs")
        if was_leader and rn.role != LEADER:
            self._drop_pending(msg.group)

    def handle_request(self, src: int, payload: bytes) -> None:
        try:
            kind, client, seq, group, epoch, body = unpack_request(payload)
        except CodecError:
            self.counters.add("kv.codec_errors")
            return
        self.counters.add("kv.requests")
        if epoch != self.shard_map.epoch:
            # the client routed with a pre-move ring: make it refetch
            self._respond(src, RESP_WRONG_EPOCH, -1, client, seq)
            self.counters.add("kv.wrong_epoch")
            return
        rn = self.raft.get(group)
        if rn is None:
            hint = self.shard_map.replicas(group)[0]
            self._respond(src, RESP_NOT_LEADER, hint, client, seq)
            return
        if rn.role != LEADER:
            hint = rn.leader if rn.leader is not None else -1
            self._respond(src, RESP_NOT_LEADER, hint, client, seq)
            self.counters.add("kv.redirects")
            return
        if kind == REQ_WRITE:
            self._handle_write(src, client, seq, group, rn, body)
        elif kind == REQ_READ:
            self._handle_read(src, client, seq, group, rn, body)
        elif kind == REQ_LOC:
            self._handle_loc(src, client, seq, group, rn, body)
        elif kind == REQ_SNAP:
            self._handle_snap(src, client, seq, group, rn)
        else:
            self._respond(src, RESP_FAIL, -1, client, seq)

    def _handle_write(self, src: int, client: int, seq: int, group: int,
                      rn: RaftNode, body: bytes) -> None:
        try:
            cmd = decode_command(body)
        except CodecError:
            self.counters.add("kv.codec_errors")
            self._respond(src, RESP_FAIL, -1, client, seq)
            return
        sm = self.machines[group]
        if sm.sealed and cmd.op in (OP_PUT, OP_CAS, OP_DELETE):
            # the range is frozen for a hand-off: dedup is checked first
            # (above-seq retries of pre-seal writes still get their
            # retained result via the duplicate path below), fresh
            # writes bounce so the client refetches the ring post-flip
            if not sm.is_duplicate(cmd):
                self._respond(src, RESP_WRONG_EPOCH, -1, client, seq)
                self.counters.add("kv.sealed_rejects")
                return
        if sm.is_duplicate(cmd):
            # committed and applied on a previous attempt: answer from the
            # retained session result — exactly-once despite retries
            status, value = sm.retained_result(cmd) or (ST_OK, b"")
            self._respond(src, status, self.rank, client, seq, value)
            self.counters.add("kv.write_dedups")
            return
        uid = cmd.uid
        if uid in self._pending_uid:
            # retry of an op still in flight: re-point the reply address,
            # don't append the command a second time
            g, index = self._pending_uid[uid]
            self._pending[(g, index)] = (src, client, seq)
            return
        index = rn.propose(body, self.env.now)
        if index is None:  # leadership lost between the check and here
            self._respond(src, RESP_NOT_LEADER, -1, client, seq)
            return
        self._pending[(group, index)] = (src, client, seq)
        self._pending_uid[uid] = (group, index)
        self.counters.add("kv.writes_proposed")

    def _handle_read(self, src: int, client: int, seq: int, group: int,
                     rn: RaftNode, body: bytes) -> None:
        if not rn.lease_valid(self.env.now):
            # no majority-acked heartbeat round inside the lease window:
            # serving now could violate linearizability during a
            # partition, so push the client to retry
            self._respond(src, RESP_NO_LEASE, self.rank, client, seq)
            self.counters.add("kv.lease_rejects")
            return
        if not rn.read_barrier_ok():
            # lease timing alone is not enough right after an election:
            # until this leader's own-term no-op is committed *and* the
            # state machine has caught up to commit_index, local state
            # may lag writes the previous leader acknowledged (Raft §8)
            self._respond(src, RESP_NO_LEASE, self.rank, client, seq)
            self.counters.add("kv.read_barrier_rejects")
            return
        (klen,) = struct.unpack_from("<H", body, 0)
        key = body[2:2 + klen]
        value = self.machines[group].get(key)
        if value is None:
            self._respond(src, RESP_MISS, self.rank, client, seq)
        else:
            self._respond(src, RESP_OK, self.rank, client, seq, value)
        self.counters.add("kv.lease_reads")

    def _handle_loc(self, src: int, client: int, seq: int, group: int,
                    rn: RaftNode, body: bytes) -> None:
        if not (rn.lease_valid(self.env.now) and rn.read_barrier_ok()):
            # a deposed-but-alive leader must stop re-confirming its own
            # slot locations once its lease lapses, or clients would
            # keep renewing one-sided reads against its lagging table
            self._respond(src, RESP_NO_LEASE, self.rank, client, seq)
            self.counters.add("kv.loc_lease_rejects")
            return
        (klen,) = struct.unpack_from("<H", body, 0)
        key = body[2:2 + klen]
        slot = self._slot_of[group].get(key)
        if slot is None:
            self._respond(src, RESP_MISS, self.rank, client, seq)
            return
        table = self.tables[group]
        addr = table.addr + slot * self.config.slot_size
        self._respond(src, RESP_OK, self.rank, client, seq,
                      pack_loc(self.rank, slot, self.config.slot_size,
                               addr, table.rkey))
        self.counters.add("kv.loc_lookups")

    def _handle_snap(self, src: int, client: int, seq: int, group: int,
                     rn: RaftNode) -> None:
        """Serve the sealed group's serialized machine (move data plane).

        Leader-only with the full read barrier: the mover must see the
        state at the seal point, nothing earlier.  Rejected while
        unsealed — a snapshot of a live range would race new writes.
        """
        if not (rn.lease_valid(self.env.now) and rn.read_barrier_ok()):
            self._respond(src, RESP_NO_LEASE, self.rank, client, seq)
            return
        sm = self.machines[group]
        if not sm.sealed:
            self._respond(src, RESP_FAIL, self.rank, client, seq)
            return
        self._respond(src, RESP_OK, self.rank, client, seq, sm.serialize())
        self.counters.add("kv.snap_serves")

    def handle_response(self, src: int, payload: bytes) -> None:
        status, hint, client, seq, value = unpack_response(payload)
        self.hub[(client, seq)] = (status, hint, value, self.env.now)

    def _respond(self, dst: int, status: int, hint: int, client: int,
                 seq: int, value: bytes = b"") -> None:
        self._tx.append((dst, ACT_RESP,
                         pack_response(status, hint, client, seq, value)))

    def _drop_pending(self, group: int) -> None:
        """Leadership lost: abandon unanswered proposals for the group
        (clients time out and retry against the new leader; session
        dedup keeps the retry exactly-once)."""
        stale = [k for k in self._pending if k[0] == group]
        for k in stale:
            del self._pending[k]
        stale_uids = [u for u, (g, _i) in self._pending_uid.items()
                      if g == group]
        for u in stale_uids:
            del self._pending_uid[u]
        if stale:
            self.counters.add("kv.pending_dropped", len(stale))

    # ------------------------------------------------------------- the loop
    def _serve(self):
        cfg = self.config
        backoff = cfg.idle_backoff_ns
        rt = self.runtime
        tp = rt.transport
        poll_ns = self.photon._poll_ns
        # ``pre_slept``: the poll-interval sleep for the next pass was
        # fused into the previous idle backoff (one kernel event instead
        # of two); every check below still runs at exactly the instant
        # the plain progress loop would have run it
        pre_slept = False
        while self.running:
            if not self.photon.alive:
                # fail-stop: a crashed rank neither serves nor ticks
                yield self.env.timeout(cfg.dead_poll_ns)
                pre_slept = False
                continue
            if rt._local:
                # local parcels dispatch without a poll charge
                yield from rt._dispatch(rt._local.popleft())
                busy = True
                pre_slept = False
            else:
                if not pre_slept:
                    yield self.env.timeout(poll_ns)
                pre_slept = False
                if tp.poll_pending():
                    # pass runs with the poll interval already charged
                    # (Runtime.progress inlined: this loop is hot enough
                    # that the wrapper frame is measurable)
                    raw = yield from tp.poll(charge_poll=False)
                    if raw is None:
                        busy = False
                    else:
                        yield from rt._dispatch(Parcel.decode(raw))
                        busy = True
                else:
                    # pure check says the pass could find no work: it
                    # would have been nothing but the sleep we just paid
                    busy = False
            now = self.env.now
            # most ticks apply nothing and flush nothing: precheck with
            # plain attribute reads so the idle path skips two generator
            # set-ups per tick (this loop runs ~100k times per benchmark)
            apply_due = flush_due = bool(self._tx)
            for rn in self.raft.values():
                rn.tick(now)
                if rn._applied_out or rn._installed_out or (
                        rn.snapshots_taken != self._snap_seen.get(rn.group, 0)):
                    apply_due = True
                if rn.outbox:
                    flush_due = True
                n = len(rn.log)
                if n > self._log_peak:
                    self._log_peak = n
                    self.counters.set_max("kv.raft.log_entries", n)
                if rn.base_index > self._base_peak:
                    self._base_peak = rn.base_index
                    self.counters.set_max("kv.raft.base_index", rn.base_index)
            applied = (yield from self._apply_committed()) if apply_due else 0
            # apply can enqueue responses (_respond → _tx), so recheck
            if flush_due or self._tx:
                sent = yield from self._flush()
            else:
                sent = 0
            if now >= self._hub_gc_due:
                self._gc_hub(now)
            if busy or applied or sent:
                backoff = cfg.idle_backoff_ns
            else:
                # fuse the next pass's poll charge into the backoff sleep
                yield self.env.timeout(backoff + poll_ns)
                pre_slept = True
                backoff = min(backoff * 2, cfg.idle_backoff_max_ns)

    def _gc_hub(self, now: int) -> None:
        """Sweep unclaimed responses older than ``hub_ttl_ns``.

        A client that exhausts its attempts stops polling its
        ``(client, seq)`` key, and a retry that already completed leaves
        the duplicate answer behind — without a sweep those entries
        accumulate for the life of the run (an unbounded leak under
        open-loop load, visible only as ``hub_backlog``).
        """
        ttl = self.config.hub_ttl_ns
        stale = [k for k, v in self.hub.items() if now - v[3] > ttl]
        for k in stale:
            del self.hub[k]
        if stale:
            self.counters.add("kv.hub_expired", len(stale))
        self._hub_gc_due = now + ttl

    def _apply_committed(self) -> int:
        """Apply newly committed entries; answer pending clients.

        Also the snapshot pump: installed snapshots handed up by the
        Raft layer are swapped in here (machine replaced wholesale, slot
        table rebuilt into a *fresh* registered buffer), and freshly
        taken snapshots are charged + mirrored into obs.
        """
        applied = 0
        for g, rn in self.raft.items():
            for index, term, blob, t_start in rn.take_installed():
                yield from self._install_snapshot(g, blob, t_start)
                applied += 1
            sm = self.machines[g]
            for index, raw in rn.take_applied():
                cmd = decode_command(raw)
                status, value = sm.apply(cmd)
                if cmd.op == OP_MERGE:
                    # mirror every merged key; blob order is sorted, so
                    # first-touch slot assignment stays deterministic
                    for key in snapshot_keys(cmd.value):
                        self._update_slot(g, key, sm)
                elif cmd.op == OP_PURGE:
                    self._purge_slots(g)
                elif cmd.op not in (OP_NOOP, OP_SEAL):
                    self._update_slot(g, cmd.key, sm)
                yield self.env.timeout(self.config.apply_cost_ns)
                applied += 1
                self.counters.add("kv.applied")
                who = self._pending.pop((g, index), None)
                self._pending_uid.pop(cmd.uid, None)
                if who is not None and rn.role == LEADER:
                    dst, client, seq = who
                    self._respond(dst, status, self.rank, client, seq, value)
            if rn.snapshots_taken > self._snap_seen.get(g, 0):
                self._snap_seen[g] = rn.snapshots_taken
                self.counters.add("kv.snapshots_taken")
                self.counters.add("kv.raft.snapshot_bytes",
                                  len(rn.snapshot_blob))
                yield self.env.timeout(self.config.snapshot_cost_ns)
        return applied

    def _install_snapshot(self, group: int, blob: bytes, t_start: int):
        """Swap in an installed snapshot: machine, then slot table.

        The replacement table is fully populated *before* it becomes the
        group's table, so a concurrently resolving one-sided reader can
        never observe a half-installed table — it either still sees the
        old buffer (stale but version-guarded) or the complete new one.
        """
        span = self.counters.span("kv.raft.install", t_start)
        sm = KVStateMachine.deserialize(group, blob)
        self.machines[group] = sm
        self.tables.pop(group, None)
        self._slot_of[group] = {}
        self._next_slot[group] = 0
        for key in sorted(sm.version):
            self._update_slot(group, key, sm)
        yield self.env.timeout(self.config.install_cost_ns)
        span.end(self.env.now, status="ok")
        self.counters.add("kv.snapshot_installs")
        self.counters.add("kv.raft.snapshot_bytes", len(blob))

    def _purge_slots(self, group: int) -> None:
        """OP_PURGE applied: zero every assigned slot header and reset
        the assignment map.  Zeroed headers (version 0, no flags) push
        any one-sided reader holding a stale loc back to the RPC path."""
        table = self.tables.get(group)
        if table is not None:
            for slot in range(self._next_slot[group]):
                addr = table.addr + slot * self.config.slot_size
                self.photon.memory.write(addr, _SLOT.pack(0, 0, 0))
        self._slot_of[group] = {}
        self._next_slot[group] = 0
        self.counters.add("kv.purges")

    def _update_slot(self, group: int, key: bytes,
                     sm: KVStateMachine) -> None:
        """Mirror one key into the group's one-sided slot table.

        Slot indices are assigned first-touch in apply order (committed
        log order, plus sorted order inside merge/install batches) —
        identical on every replica that took the same path.  A replica
        rebuilt from a snapshot assigns sorted order instead; that is
        safe because clients only ever resolve locs against the current
        leader's own table, never mix slots across replicas.
        """
        table = self.tables.get(group)
        if table is None:
            # deferred registration (post-restart): first published
            # state materializes the table
            table = self.photon.buffer(
                self.config.slots_per_group * self.config.slot_size)
            self.tables[group] = table
        slots = self._slot_of[group]
        slot = slots.get(key)
        if slot is None:
            if self._next_slot[group] >= self.config.slots_per_group:
                self.counters.add("kv.slot_overflow")
                return  # table full: key stays RPC-only
            slot = self._next_slot[group]
            self._next_slot[group] = slot + 1
            slots[key] = slot
        addr = table.addr + slot * self.config.slot_size
        value = sm.get(key)
        version = sm.version.get(key, 0)
        if value is None:
            self.photon.memory.write(addr, _SLOT.pack(version, 0, 0))
        elif len(value) > self.config.value_limit:
            self.photon.memory.write(
                addr, _SLOT.pack(version, 0, SLOT_PRESENT | SLOT_OVERSIZE))
            self.counters.add("kv.slot_oversize")
        else:
            self.photon.memory.write(
                addr, _SLOT.pack(version, len(value), SLOT_PRESENT) + value)

    def _flush(self):
        """Drain Raft outboxes and the response queue onto the wire."""
        sent = 0
        for g, rn in self.raft.items():
            if not rn.outbox:
                continue
            out, rn.outbox = rn.outbox, []
            for dst, raw in out:
                yield from self._ship(dst, ACT_RAFT, raw)
                sent += 1
        while self._tx:
            dst, action, payload = self._tx.popleft()
            yield from self._ship(dst, action, payload)
            sent += 1
        return sent

    def _ship(self, dst: int, action: str, payload: bytes):
        if self.monitor is not None and self.monitor.is_dead(dst):
            self.counters.add("kv.drops_to_dead")
            return
        try:
            yield from self.runtime.send(dst, action, payload)
        except PeerDownError:
            # breaker open: Raft and clients both tolerate silent loss
            self.counters.add("kv.breaker_drops")

    # ------------------------------------------------------------- queries
    def leader_of(self, group: int) -> Optional[int]:
        rn = self.raft.get(group)
        return rn.leader if rn is not None else None

    def is_leader(self, group: int) -> bool:
        rn = self.raft.get(group)
        return rn is not None and rn.role == LEADER

    def stats(self) -> Dict[str, object]:
        """JSON-serializable store snapshot (obs report section)."""
        return {
            "rank": self.rank,
            "epoch": self.shard_map.epoch,
            "groups": {str(g): rn.stats() for g, rn in self.raft.items()},
            "machines": {str(g): sm.stats()
                         for g, sm in self.machines.items()},
            "slots_used": {str(g): self._next_slot[g] for g in self.raft},
            "pending_writes": len(self._pending),
            "hub_backlog": len(self.hub),
        }


def build_kv(cluster, photons, config: Optional[KVConfig] = None,
             monitors=None, registry: Optional[ActionRegistry] = None,
             start: bool = True):
    """Assemble one :class:`KVNode` per rank over a fresh parcel runtime.

    ``photons`` come from :func:`repro.photon.photon_init`; ``monitors``
    (optional) from :func:`repro.runtime.health.build_health` — when
    given, the endpoints, transports and KV nodes all consume the
    detector (fast-fail, breakers, detection-driven elections).
    Returns the node list; the shard map is shared via ``nodes[r]
    .shard_map``.  Nothing is spawned when ``start`` is False.
    """
    cfg = config or KVConfig()
    cfg.validate()
    if cfg.rf > cluster.n:
        raise SimulationError(
            f"replication factor {cfg.rf} needs at least {cfg.rf} ranks "
            f"(cluster has {cluster.n})")
    shard_map = ShardMap(cfg.n_groups, cluster.n, rf=cfg.rf)
    reg = registry if registry is not None else ActionRegistry()
    register_actions(reg)
    nodes: List[KVNode] = []
    for r in range(cluster.n):
        transport = PhotonTransport(photons[r])
        runtime = Runtime(r, cluster.env, transport, reg,
                          counters=cluster.scope(r))
        node = KVNode(cluster, r, runtime, photons[r], shard_map, cfg)
        runtime.kv = node
        if monitors is not None:
            photons[r].attach_health(monitors[r])
            transport.attach_health(monitors[r])
            node.attach_health(monitors[r])
        nodes.append(node)
    if start:
        for node in nodes:
            node.start()
    return nodes
