"""Load generators for the KV store: Zipf keys, closed/open loops.

Key popularity follows a Zipf(theta) distribution over a fixed key
population — the standard skew model for KV serving benchmarks (theta 0
is uniform, 0.99 is the YCSB default, higher concentrates traffic on the
hot shard's leader).  Sampling inverts a precomputed CDF with one
uniform draw from a named deterministic stream, so workloads replay
bit-identically.

Two drivers:

* :func:`closed_loop` — each simulated client keeps exactly one op in
  flight; throughput is an *output* (classic closed-loop latency
  measurement, no coordinated-omission correction needed).
* :func:`open_loop` — ops arrive on a Poisson (or fixed-rate) schedule
  regardless of completions; latency under overload includes queueing,
  which is the honest tail-latency number for a serving system.

Latencies are recorded per op class both in a :class:`WorkloadStats`
(exact samples → exact percentiles via :func:`repro.util.stats
.percentile`) and as ``kv.op.get`` / ``kv.op.put`` spans in the rank's
obs scope, so ``repro.obs`` snapshots and JSONL exports see them too.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from ..util.stats import percentile
from .client import KVClient
from .shard import ST_CAS_FAIL, ST_MISS, ST_OK

__all__ = ["ZipfKeys", "WorkloadStats", "closed_loop", "open_loop",
           "value_for"]


class ZipfKeys:
    """Zipf-skewed sampler over ``kv:00000000``-style keys."""

    def __init__(self, n_keys: int, theta: float, rng: np.random.Generator):
        if n_keys < 1:
            raise ValueError("need at least one key")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n_keys = n_keys
        self.theta = theta
        self._rng = rng
        self.keys = [f"kv:{i:08d}".encode() for i in range(n_keys)]
        ranks = np.arange(1, n_keys + 1, dtype=np.float64)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self) -> bytes:
        u = self._rng.random()
        return self.keys[int(np.searchsorted(self._cdf, u, side="left"))]


def value_for(client_id: int, seq: int, size: int) -> bytes:
    """Deterministic per-write value: self-describing so the failover
    checker can match survivors to the ack that produced them."""
    tag = f"c{client_id}:s{seq}:".encode()
    if len(tag) >= size:
        return tag[:size]
    return tag + b"x" * (size - len(tag))


class WorkloadStats:
    """Exact latency samples + outcome counts for one driver run."""

    def __init__(self):
        self.latency_ns: Dict[str, List[int]] = {"get": [], "put": []}
        self.ok = 0
        self.miss = 0
        self.cas_fail = 0
        self.failed = 0
        self.t_first: Optional[int] = None
        self.t_last: Optional[int] = None

    def record(self, op: str, t0: int, t1: int, status: int) -> None:
        if self.t_first is None:
            self.t_first = t0
        self.t_last = t1
        if status == ST_OK:
            self.ok += 1
        elif status == ST_MISS:
            self.miss += 1
        elif status == ST_CAS_FAIL:
            self.cas_fail += 1
        else:
            self.failed += 1
            return  # a timed-out op's latency is not a service time
        self.latency_ns[op].append(t1 - t0)

    def merge(self, other: "WorkloadStats") -> None:
        for op, xs in other.latency_ns.items():
            self.latency_ns[op].extend(xs)
        self.ok += other.ok
        self.miss += other.miss
        self.cas_fail += other.cas_fail
        self.failed += other.failed
        for attr in ("t_first", "t_last"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                pick = min if attr == "t_first" else max
                setattr(self, attr,
                        theirs if mine is None else pick(mine, theirs))

    @property
    def completed(self) -> int:
        return self.ok + self.miss + self.cas_fail

    def ops_per_sec(self) -> float:
        if self.t_first is None or self.t_last is None \
                or self.t_last <= self.t_first:
            return 0.0
        return self.completed / ((self.t_last - self.t_first) / 1e9)

    def pct_us(self, op: str, p: float) -> float:
        xs = self.latency_ns.get(op, [])
        return percentile(xs, p) / 1e3 if xs else 0.0

    def all_latencies(self) -> List[int]:
        return [x for xs in self.latency_ns.values() for x in xs]


def _one_op(env, client: KVClient, zipf: ZipfKeys, rng: np.random.Generator,
            get_ratio: float, value_size: int, stats: WorkloadStats,
            scope=None, t_arrival: Optional[int] = None):
    """Issue a single mixed-workload op and record it (generator).

    ``t_arrival`` (open-loop drivers) backdates the measured start so
    queueing delay counts against the op's latency.
    """
    key = zipf.sample()
    do_get = rng.random() < get_ratio
    op = "get" if do_get else "put"
    t0 = env.now if t_arrival is None else t_arrival
    span = scope.span(f"kv.op.{op}", t0) if scope is not None else None
    if do_get:
        status, _value = yield from client.get(key)
    else:
        status = yield from client.put(
            key, value_for(client.client_id, client.seq + 1, value_size))
    t1 = env.now
    if span is not None:
        span.end(t1, status="ok" if status == ST_OK else f"st{status}")
    stats.record(op, t0, t1, status)


def closed_loop(env, client: KVClient, zipf: ZipfKeys,
                rng: np.random.Generator, n_ops: int, stats: WorkloadStats,
                get_ratio: float = 0.5, value_size: int = 64,
                scope=None, think_ns: int = 0):
    """One-in-flight driver: ``n_ops`` sequential ops (generator)."""
    for _ in range(n_ops):
        yield from _one_op(env, client, zipf, rng, get_ratio, value_size,
                           stats, scope)
        if think_ns:
            yield env.timeout(think_ns)


def open_loop(env, client_pool: List[KVClient], zipf: ZipfKeys,
              rng: np.random.Generator, rate_ops_s: float, duration_ns: int,
              stats: WorkloadStats, get_ratio: float = 0.5,
              value_size: int = 64, scope=None, poisson: bool = True):
    """Arrival-driven driver (generator).

    Ops are injected at ``rate_ops_s`` (exponential or fixed gaps) into a
    single shared arrival FIFO; whichever client session goes idle first
    pops the next arrival, so one slow op (a failover stall, a snapshot
    install) delays only its own session instead of every op that was
    round-robined behind it.  In-flight concurrency is bounded by the
    pool size while the *schedule* stays open-loop, so queueing delay
    shows up in the recorded latency instead of being silently
    coordinated away.  Idle sessions park on a wake event the injector
    triggers on each arrival — no polling, so an idle pool costs zero
    sim events and the event order (hence the trace) is identical
    whether or not sessions outnumber arrivals.
    """
    gap_ns = 1e9 / rate_ops_s
    arrivals: deque = deque()
    state = {"closed": False, "wake": env.event()}

    def _wake():
        if not state["wake"].triggered:
            state["wake"].succeed()

    def session(client: KVClient):
        while True:
            if arrivals:
                t_arrival = arrivals.popleft()
                yield from _one_op(env, client, zipf, rng, get_ratio,
                                   value_size, stats, scope,
                                   t_arrival=t_arrival)
            elif state["closed"]:
                return
            else:
                # first parker after a trigger re-arms the shared event;
                # later parkers in the same step reuse the fresh one, so
                # one arrival wakes every idle session (deterministically,
                # in parking order) and exactly one of them pops it.
                if state["wake"].triggered:
                    state["wake"] = env.event()
                yield state["wake"]

    procs = [env.process(session(c), name=f"kv.open.{i}")
             for i, c in enumerate(client_pool)]
    t_end = env.now + duration_ns
    while env.now < t_end:
        arrivals.append(env.now)
        _wake()
        wait = rng.exponential(gap_ns) if poisson else gap_ns
        yield env.timeout(max(1, int(wait)))
    state["closed"] = True
    _wake()
    for p in procs:
        if p.is_alive:
            yield p
