"""Parcel coalescing: batch small parcels per destination.

Message-driven runtimes amortise per-message overhead by packing many
small parcels bound for the same rank into one network message (AM++'s
coalescing buffers; HPX-5 does the same over Photon; Seriema's
invocation coalescing is the RPC-layer version).  This layer wraps any
transport:

- ``send`` appends the encoded parcel to the destination's open batch and
  ships the batch when it reaches ``flush_bytes`` / ``flush_count`` — or
  when ``flush``/``flush_stale``/``poll`` observes it has been open
  longer than ``max_delay_ns`` (latency bound);
- ``poll`` unpacks batches from the underlying transport and hands the
  contained parcels out one at a time.

Failure handling is deliberate rather than accidental: when the inner
transport raises :class:`~repro.runtime.transport.PeerDownError` mid-
ship, the batch is either **shed** (default — the loss is counted in
``parcels_dropped`` and the ``coalesce.parcels_dropped`` counter, and
the error propagates to the sender) or **requeued**
(``requeue_on_peer_down=True`` — the parcels go back into the open
batch, up to ``max_requeues`` times, so a recovering peer still gets
them).

The batch wire format is a chain of ``(u32 length, bytes)`` records.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Deque, Dict, List, Optional

from ..sim.core import SimulationError
from .transport import PeerDownError

__all__ = ["CoalescingTransport"]

_LEN = struct.Struct("<I")
#: host cost to parse one frame header and hand the parcel out (ns)
_PARSE_NS = 40


class _Batch:
    __slots__ = ("chunks", "nbytes", "opened_at", "requeues")

    def __init__(self, now: int):
        self.chunks: List[bytes] = []
        self.nbytes = 0
        self.opened_at = now
        self.requeues = 0


class CoalescingTransport:
    """Batches small parcels per destination over an inner transport."""

    def __init__(self, inner, flush_bytes: int = 4096,
                 flush_count: int = 16, max_delay_ns: int = 5_000,
                 requeue_on_peer_down: bool = False,
                 max_requeues: int = 1):
        if flush_bytes < 64 or flush_count < 1:
            raise SimulationError("unreasonable coalescing thresholds")
        self.inner = inner
        self.rank = inner.rank
        self.flush_bytes = flush_bytes
        self.flush_count = flush_count
        self.max_delay_ns = max_delay_ns
        self.requeue_on_peer_down = requeue_on_peer_down
        self.max_requeues = max_requeues
        self._open: Dict[int, _Batch] = {}
        self._ready: Deque[bytes] = deque()
        self.batches_sent = 0
        self.parcels_batched = 0
        self.parcels_dropped = 0
        # both transports expose the photon/minimpi lib for env + memory;
        # the counter scope lives on the lib (photon) or its engine (mpi)
        self._lib = getattr(inner, "ph", None) or getattr(inner, "comm")
        self.counters = getattr(self._lib, "counters", None) \
            or self._lib.engine.counters

    @property
    def env(self):
        return self._lib.env

    def _peer_down(self, dst: int) -> bool:
        down = getattr(self.inner, "peer_is_down", None)
        return down is not None and down(dst)

    # ------------------------------------------------------------- sending
    def send(self, dst: int, raw: bytes):
        """Queue one encoded parcel; ships the batch at the thresholds
        (generator)."""
        framed_len = _LEN.size + len(raw)
        batch = self._open.get(dst)
        if batch is None:
            batch = self._open[dst] = _Batch(self.env.now)
        elif batch.nbytes + framed_len > self.flush_bytes:
            yield from self._ship(dst)
            batch = self._open.get(dst)
            if batch is None:
                batch = self._open[dst] = _Batch(self.env.now)
        batch.chunks.append(_LEN.pack(len(raw)))
        batch.chunks.append(raw)
        batch.nbytes += framed_len
        self.parcels_batched += 1
        if (len(batch.chunks) // 2 >= self.flush_count
                or batch.nbytes >= self.flush_bytes):
            yield from self._ship(dst)

    def _ship(self, dst: int):
        batch = self._open.pop(dst, None)
        if batch is None or not batch.chunks:
            return
        try:
            yield from self.inner.send(dst, b"".join(batch.chunks))
        except PeerDownError:
            n = len(batch.chunks) // 2
            if (self.requeue_on_peer_down
                    and batch.requeues < self.max_requeues):
                # put the parcels back so a recovering peer still gets
                # them; restart the staleness clock and merge anything
                # queued behind us while the send was in flight
                batch.requeues += 1
                batch.opened_at = self.env.now
                newer = self._open.get(dst)
                if newer is not None:
                    batch.chunks.extend(newer.chunks)
                    batch.nbytes += newer.nbytes
                self._open[dst] = batch
                self.counters.add("coalesce.parcels_requeued", n)
                return
            # shed: account for every parcel the batch carried, then let
            # the sender see the same error the inner transport raised
            self.parcels_dropped += n
            self.counters.add("coalesce.parcels_dropped", n)
            raise
        self.batches_sent += 1
        self.counters.add("coalesce.batches_sent")

    def flush(self, dst: Optional[int] = None):
        """Ship open batches now (generator) — call at phase boundaries."""
        targets = [dst] if dst is not None else list(self._open)
        for d in targets:
            yield from self._ship(d)

    def flush_stale(self):
        """Ship batches older than ``max_delay_ns`` (generator).

        Called from :meth:`poll` and from the runtime scheduler between
        dispatches, so the latency bound holds even on ranks that are
        busy with local work and rarely poll.  A tripped breaker never
        propagates out of here: in requeue mode down peers are skipped
        (no churn), in shed mode the loss is counted and swallowed —
        there is no specific send to fail.
        """
        now = self.env.now
        stale = [d for d, b in self._open.items()
                 if now - b.opened_at >= self.max_delay_ns]
        for d in stale:
            if self.requeue_on_peer_down and self._peer_down(d):
                continue
            try:
                yield from self._ship(d)
            except PeerDownError:
                pass

    # kept as an alias: poll() predates the scheduler-driven flush
    _flush_stale = flush_stale

    def stale_pending(self) -> bool:
        """True when an open batch has exceeded the latency bound
        (pure check — the scheduler uses this to decide whether
        :meth:`flush_stale` is worth a pass)."""
        if not self._open:
            return False
        now = self.env.now
        return any(now - b.opened_at >= self.max_delay_ns
                   for b in self._open.values())

    # ------------------------------------------------------------- receiving
    def poll_pending(self) -> bool:
        """True when :meth:`poll` could do more than charge poll time."""
        if self._ready or self.stale_pending():
            return True
        inner_pending = getattr(self.inner, "poll_pending", None)
        return inner_pending() if inner_pending is not None else False

    def poll(self, charge_poll: bool = True):
        """Return the next parcel, unpacking inner batches (generator)."""
        yield from self.flush_stale()
        if self._ready:
            return self._ready.popleft()
        blob = yield from self.inner.poll(charge_poll=charge_poll)
        if blob is None:
            return None
        offset = 0
        records = 0
        while offset < len(blob):
            (length,) = _LEN.unpack_from(blob, offset)
            offset += _LEN.size
            self._ready.append(blob[offset:offset + length])
            offset += length
            records += 1
        if offset != len(blob):
            raise SimulationError("corrupt coalesced batch")
        # unpack cost: copy the batch out + parse each frame header
        yield self.env.timeout(self._lib.memory.memcpy_cost_ns(len(blob))
                               + _PARSE_NS * records)
        return self._ready.popleft() if self._ready else None

    def stats(self) -> Dict[str, object]:
        """JSON-serializable snapshot layered over the inner transport's."""
        return {
            "kind": "coalescing",
            "batches_sent": self.batches_sent,
            "parcels_batched": self.parcels_batched,
            "parcels_dropped": self.parcels_dropped,
            "open_batches": len(self._open),
            "ready_parcels": len(self._ready),
            "inner": self.inner.stats(),
        }
