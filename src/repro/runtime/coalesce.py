"""Parcel coalescing: batch small parcels per destination.

Message-driven runtimes amortise per-message overhead by packing many
small parcels bound for the same rank into one network message (AM++'s
coalescing buffers; HPX-5 does the same over Photon).  This layer wraps
any transport:

- ``send`` appends the encoded parcel to the destination's open batch and
  ships the batch when it reaches ``flush_bytes`` / ``flush_count`` — or
  when ``flush``/``poll`` observes it has been open longer than
  ``max_delay_ns`` (latency bound);
- ``poll`` unpacks batches from the underlying transport and hands the
  contained parcels out one at a time.

The batch wire format is a chain of ``(u32 length, bytes)`` records.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Deque, Dict, List, Optional

from ..sim.core import SimulationError

__all__ = ["CoalescingTransport"]

_LEN = struct.Struct("<I")
#: host cost to parse one frame header and hand the parcel out (ns)
_PARSE_NS = 40


class _Batch:
    __slots__ = ("chunks", "nbytes", "opened_at")

    def __init__(self, now: int):
        self.chunks: List[bytes] = []
        self.nbytes = 0
        self.opened_at = now


class CoalescingTransport:
    """Batches small parcels per destination over an inner transport."""

    def __init__(self, inner, flush_bytes: int = 4096,
                 flush_count: int = 16, max_delay_ns: int = 5_000):
        if flush_bytes < 64 or flush_count < 1:
            raise SimulationError("unreasonable coalescing thresholds")
        self.inner = inner
        self.rank = inner.rank
        self.flush_bytes = flush_bytes
        self.flush_count = flush_count
        self.max_delay_ns = max_delay_ns
        self._open: Dict[int, _Batch] = {}
        self._ready: Deque[bytes] = deque()
        self.batches_sent = 0
        self.parcels_batched = 0

    @property
    def env(self):
        # both transports expose the photon/minimpi env through their lib
        lib = getattr(self.inner, "ph", None) or getattr(self.inner, "comm")
        return lib.env

    # ------------------------------------------------------------- sending
    def send(self, dst: int, raw: bytes):
        """Queue one encoded parcel; ships the batch at the thresholds
        (generator)."""
        framed_len = _LEN.size + len(raw)
        batch = self._open.get(dst)
        if batch is None:
            batch = self._open[dst] = _Batch(self.env.now)
        elif batch.nbytes + framed_len > self.flush_bytes:
            yield from self._ship(dst)
            batch = self._open[dst] = _Batch(self.env.now)
        batch.chunks.append(_LEN.pack(len(raw)))
        batch.chunks.append(raw)
        batch.nbytes += framed_len
        self.parcels_batched += 1
        if (len(batch.chunks) // 2 >= self.flush_count
                or batch.nbytes >= self.flush_bytes):
            yield from self._ship(dst)

    def _ship(self, dst: int):
        batch = self._open.pop(dst, None)
        if batch is None or not batch.chunks:
            return
        yield from self.inner.send(dst, b"".join(batch.chunks))
        self.batches_sent += 1

    def flush(self, dst: Optional[int] = None):
        """Ship open batches now (generator) — call at phase boundaries."""
        targets = [dst] if dst is not None else list(self._open)
        for d in targets:
            yield from self._ship(d)

    def _flush_stale(self):
        now = self.env.now
        stale = [d for d, b in self._open.items()
                 if now - b.opened_at >= self.max_delay_ns]
        for d in stale:
            yield from self._ship(d)

    # ------------------------------------------------------------- receiving
    def poll(self):
        """Return the next parcel, unpacking inner batches (generator)."""
        yield from self._flush_stale()
        if self._ready:
            return self._ready.popleft()
        blob = yield from self.inner.poll()
        if blob is None:
            return None
        offset = 0
        records = 0
        while offset < len(blob):
            (length,) = _LEN.unpack_from(blob, offset)
            offset += _LEN.size
            self._ready.append(blob[offset:offset + length])
            offset += length
            records += 1
        if offset != len(blob):
            raise SimulationError("corrupt coalesced batch")
        # unpack cost: copy the batch out + parse each frame header
        lib = getattr(self.inner, "ph", None) or getattr(self.inner, "comm")
        yield lib.env.timeout(lib.memory.memcpy_cost_ns(len(blob))
                              + _PARSE_NS * records)
        return self._ready.popleft() if self._ready else None
