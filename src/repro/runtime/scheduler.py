"""The per-rank runtime: parcel dispatch loop and local work queue.

One :class:`Runtime` per rank wraps a transport, an action registry and a
local double-ended work queue.  ``send`` ships work to a rank (short-
circuiting locally); ``progress`` pulls one parcel off the wire or the
local queue and runs its handler; ``process_until`` pumps the runtime
while waiting for a condition — handlers run inline, so a handler may
itself send parcels or wait on futures.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Callable, Deque, Optional

from ..sim.core import Environment, SimulationError
from .actions import ActionRegistry
from .parcel import Parcel

__all__ = ["Runtime"]


class Runtime:
    """Per-rank parcel runtime."""

    def __init__(self, rank: int, env: Environment, transport,
                 registry: ActionRegistry, counters=None,
                 handler_cost_ns: int = 150):
        self.rank = rank
        self.env = env
        self.transport = transport
        self.registry = registry
        self.counters = counters
        #: fixed dispatch overhead per parcel (scheduler + action lookup)
        self.handler_cost_ns = handler_cost_ns
        self._local: Deque[Parcel] = deque()
        self.parcels_sent = 0
        self.parcels_run = 0
        self.stopped = False
        #: active-message engine (attach via :meth:`enable_am`); None
        #: keeps the plain-parcel fast path byte-identical
        self.am = None
        # scheduler-driven stale-batch flushing: resolved once so ranks
        # on a non-coalescing transport pay a single None check
        self._stale_pending = getattr(transport, "stale_pending", None)
        self._stale_flusher = getattr(transport, "flush_stale", None)

    def enable_am(self, config=None):
        """Attach an active-message engine; returns it (idempotent)."""
        if self.am is None:
            from .am import ActiveMessageEngine
            self.am = ActiveMessageEngine(self, config)
        return self.am

    # ------------------------------------------------------------------ send
    def send(self, dst: int, action: str, payload: bytes = b""):
        """Send a parcel (generator).  Local sends skip the wire."""
        parcel = Parcel(action=self.registry.id_of(action), src=self.rank,
                        payload=bytes(payload))
        self.parcels_sent += 1
        if self.counters is not None:
            self.counters.add("rt.parcels_sent")
        if dst == self.rank:
            self._local.append(parcel)
            return
        yield from self.transport.send(dst, parcel.encode())

    def invoke(self, dst: int, action: str, payload: bytes = b""):
        """Remote invocation (generator → Future) — requires
        :meth:`enable_am`; see :mod:`repro.runtime.am`."""
        if self.am is None:
            raise SimulationError(
                "active messages not enabled on this runtime "
                "(call enable_am() or build_runtime(..., am=True))")
        fut = yield from self.am.invoke(dst, action, payload)
        return fut

    # ------------------------------------------------------------------ run
    def _dispatch(self, parcel: Parcel):
        """Run one parcel's handler inline (generator)."""
        yield self.env.timeout(self.handler_cost_ns)
        handler = self.registry.handler(parcel.action)
        result = handler(self, parcel.src, parcel.payload)
        if inspect.isgenerator(result):
            yield from result
        self.parcels_run += 1
        if self.counters is not None:
            self.counters.add("rt.parcels_run")

    def _run_parcel(self, parcel: Parcel):
        """Route one parcel: plain dispatch, or the AM engine for
        flagged parcels (generator)."""
        if parcel.flags:
            if self.am is None:
                raise SimulationError(
                    f"rank {self.rank}: active-message parcel "
                    "(flags set) but no AM engine attached")
            yield from self.am.handle(parcel)
            return
        yield from self._dispatch(parcel)

    def progress(self, charge_poll: bool = True):
        """Process at most one parcel (generator → bool processed).

        ``charge_poll=False`` is forwarded to transports that support
        pre-charged polling (the KV server loop pays the poll interval
        itself so an idle pass costs one kernel event, not two).

        On a coalescing transport, every progress pass first ships
        batches past their latency bound — the scheduler drives the
        stale flush, so a rank grinding through local work cannot sit
        on a stale batch until its next ``poll``.
        """
        if self._stale_pending is not None and self._stale_pending():
            yield from self._stale_flusher()
        if self._local:
            yield from self._run_parcel(self._local.popleft())
            return True
        if charge_poll:
            raw = yield from self.transport.poll()
        else:
            raw = yield from self.transport.poll(charge_poll=False)
        if raw is None:
            return False
        yield from self._run_parcel(Parcel.decode(raw))
        return True

    def process_until(self, predicate: Callable[[], bool],
                      timeout_ns: Optional[int] = None,
                      idle_backoff_ns: int = 200):
        """Pump parcels until ``predicate()`` holds (generator → bool)."""
        deadline = (None if timeout_ns is None
                    else self.env.now + timeout_ns)
        while not predicate():
            if deadline is not None and self.env.now >= deadline:
                return False
            busy = yield from self.progress()
            if not busy and not predicate():
                yield self.env.timeout(idle_backoff_ns)
        return True

    def process_n(self, count: int, timeout_ns: Optional[int] = None):
        """Pump until ``count`` parcels have run on this rank (generator)."""
        target = self.parcels_run + count
        ok = yield from self.process_until(
            lambda: self.parcels_run >= target, timeout_ns)
        return ok
