"""The per-rank runtime: parcel dispatch loop and local work queue.

One :class:`Runtime` per rank wraps a transport, an action registry and a
local double-ended work queue.  ``send`` ships work to a rank (short-
circuiting locally); ``progress`` pulls one parcel off the wire or the
local queue and runs its handler; ``process_until`` pumps the runtime
while waiting for a condition — handlers run inline, so a handler may
itself send parcels or wait on futures.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Callable, Deque, Optional

from ..sim.core import Environment
from .actions import ActionRegistry
from .parcel import Parcel

__all__ = ["Runtime"]


class Runtime:
    """Per-rank parcel runtime."""

    def __init__(self, rank: int, env: Environment, transport,
                 registry: ActionRegistry, counters=None,
                 handler_cost_ns: int = 150):
        self.rank = rank
        self.env = env
        self.transport = transport
        self.registry = registry
        self.counters = counters
        #: fixed dispatch overhead per parcel (scheduler + action lookup)
        self.handler_cost_ns = handler_cost_ns
        self._local: Deque[Parcel] = deque()
        self.parcels_sent = 0
        self.parcels_run = 0
        self.stopped = False

    # ------------------------------------------------------------------ send
    def send(self, dst: int, action: str, payload: bytes = b""):
        """Send a parcel (generator).  Local sends skip the wire."""
        parcel = Parcel(action=self.registry.id_of(action), src=self.rank,
                        payload=bytes(payload))
        self.parcels_sent += 1
        if self.counters is not None:
            self.counters.add("rt.parcels_sent")
        if dst == self.rank:
            self._local.append(parcel)
            return
        yield from self.transport.send(dst, parcel.encode())

    # ------------------------------------------------------------------ run
    def _dispatch(self, parcel: Parcel):
        """Run one parcel's handler inline (generator)."""
        yield self.env.timeout(self.handler_cost_ns)
        handler = self.registry.handler(parcel.action)
        result = handler(self, parcel.src, parcel.payload)
        if inspect.isgenerator(result):
            yield from result
        self.parcels_run += 1
        if self.counters is not None:
            self.counters.add("rt.parcels_run")

    def progress(self, charge_poll: bool = True):
        """Process at most one parcel (generator → bool processed).

        ``charge_poll=False`` is forwarded to transports that support
        pre-charged polling (the KV server loop pays the poll interval
        itself so an idle pass costs one kernel event, not two).
        """
        if self._local:
            yield from self._dispatch(self._local.popleft())
            return True
        if charge_poll:
            raw = yield from self.transport.poll()
        else:
            raw = yield from self.transport.poll(charge_poll=False)
        if raw is None:
            return False
        yield from self._dispatch(Parcel.decode(raw))
        return True

    def process_until(self, predicate: Callable[[], bool],
                      timeout_ns: Optional[int] = None,
                      idle_backoff_ns: int = 200):
        """Pump parcels until ``predicate()`` holds (generator → bool)."""
        deadline = (None if timeout_ns is None
                    else self.env.now + timeout_ns)
        while not predicate():
            if deadline is not None and self.env.now >= deadline:
                return False
            busy = yield from self.progress()
            if not busy and not predicate():
                yield self.env.timeout(idle_backoff_ns)
        return True

    def process_n(self, count: int, timeout_ns: Optional[int] = None):
        """Pump until ``count`` parcels have run on this rank (generator)."""
        target = self.parcels_run + count
        ok = yield from self.process_until(
            lambda: self.parcels_run >= target, timeout_ns)
        return ok
