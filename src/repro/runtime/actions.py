"""Action registry: named remote procedures parcels can invoke.

Actions are registered identically on every rank (SPMD), giving each a
stable integer id that travels in the parcel header.  A handler has the
signature ``handler(rt, src, payload)`` and may be a plain function or a
generator (in which case the scheduler drives it, letting handlers
communicate or sleep).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.core import SimulationError

__all__ = ["ActionRegistry"]


class ActionRegistry:
    """Name ↔ id mapping plus the handler table."""

    def __init__(self):
        self._by_name: Dict[str, int] = {}
        self._handlers: List[Callable] = []
        self._names: List[str] = []

    def register(self, name: str, handler: Callable) -> int:
        """Register a handler; returns its action id.

        Registration order must match across ranks — register everything
        before starting the schedulers.
        """
        if name in self._by_name:
            raise SimulationError(f"action {name!r} already registered")
        aid = len(self._handlers)
        self._by_name[name] = aid
        self._handlers.append(handler)
        self._names.append(name)
        return aid

    def action(self, name: str):
        """Decorator form of :meth:`register`."""

        def wrap(fn):
            self.register(name, fn)
            return fn

        return wrap

    def id_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise SimulationError(f"unknown action {name!r}") from None

    def handler(self, aid: int) -> Callable:
        if not 0 <= aid < len(self._handlers):
            raise SimulationError(f"bad action id {aid}")
        return self._handlers[aid]

    def name_of(self, aid: int) -> str:
        if not 0 <= aid < len(self._names):
            raise SimulationError(f"bad action id {aid}")
        return self._names[aid]

    def __len__(self) -> int:
        return len(self._handlers)
