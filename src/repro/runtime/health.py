"""Heartbeat service and phi-accrual failure detection.

Each rank runs a :class:`HealthMonitor`: a beat loop that sends zero-byte
heartbeat messages to every peer over the *real* fabric (so partitions,
gray links and powered-off NICs starve detection exactly like data), and
a phi-accrual-style detector per peer that turns heartbeat arrival gaps
into a continuous suspicion level.

Suspicion: assuming exponential inter-arrival with the observed mean,
``phi = (now - last_rx) / (mean * ln 10)`` — i.e. phi is the number of
decimal orders of magnitude of confidence that the peer is gone.  Two
thresholds map phi onto the membership states::

    alive --phi >= phi_suspect--> suspect --phi >= phi_dead--> dead

DEAD is sticky: a dead peer only returns to ALIVE when a heartbeat with
a *higher incarnation number* arrives (the peer restarted), which keeps
every monitor's membership view monotonic.  SUSPECT is not sticky — one
fresh heartbeat clears it (gray link, not a crash).

Consumers register callbacks via :meth:`HealthMonitor.on_dead` /
:meth:`on_join`; the photon reliability layer, the runtime circuit
breaker and the minimpi error paths all attach here (see their
``attach_health`` methods).

Nothing in this module runs unless :func:`build_health` is called, so
un-chaosed runs are bit-identical with or without the module imported.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..fabric.nic import WireMsg

__all__ = ["HealthConfig", "PhiAccrualDetector", "MembershipView",
           "HealthMonitor", "build_health",
           "ALIVE", "SUSPECT", "DEAD"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

_LN10 = math.log(10.0)


@dataclass(frozen=True)
class HealthConfig:
    """Failure-detector tuning (see DESIGN.md fault-model section)."""

    #: heartbeat period per peer (ns)
    period_ns: int = 50_000
    #: phi at which a peer becomes SUSPECT (cleared by one heartbeat)
    phi_suspect: float = 2.0
    #: phi at which a peer is declared DEAD (sticky; needs an incarnation
    #: bump to clear).  Detection latency ~= phi_dead * mean * ln(10).
    phi_dead: float = 6.0
    #: EWMA weight of the newest inter-arrival sample
    ewma_alpha: float = 0.2
    #: ignore samples shorter than this (heartbeat bunching after a stall)
    min_interval_ns: int = 1_000

    def validate(self) -> None:
        if self.period_ns <= 0:
            raise ValueError("period_ns must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.phi_dead <= self.phi_suspect:
            raise ValueError("phi_dead must exceed phi_suspect")


class PhiAccrualDetector:
    """Suspicion level for one observed peer (no RNG — fully determined
    by heartbeat arrival times)."""

    __slots__ = ("mean_ns", "last_rx", "samples", "_alpha", "_min_interval")

    def __init__(self, config: HealthConfig, now: int):
        # seed the mean at the nominal period so the very first gaps are
        # judged against a sane baseline instead of dividing by zero
        self.mean_ns = float(config.period_ns)
        self.last_rx = now
        self.samples = 0
        self._alpha = config.ewma_alpha
        self._min_interval = config.min_interval_ns

    def sample(self, now: int) -> None:
        interval = now - self.last_rx
        self.last_rx = now
        if interval < self._min_interval:
            return
        self.samples += 1
        self.mean_ns += self._alpha * (interval - self.mean_ns)

    def phi(self, now: int) -> float:
        elapsed = now - self.last_rx
        if elapsed <= 0:
            return 0.0
        return elapsed / (self.mean_ns * _LN10)


class MembershipView:
    """Monotonic membership: the version only moves forward, and a DEAD
    rank only returns through a higher incarnation."""

    def __init__(self, n: int):
        self.version = 0
        self.status: Dict[int, str] = {r: ALIVE for r in range(n)}
        self.incarnation: Dict[int, int] = {r: 1 for r in range(n)}
        #: bounded log of (version, rank, old, new, incarnation)
        self.history: Deque[Tuple[int, int, str, str, int]] = \
            deque(maxlen=4096)

    def transition(self, rank: int, new: str,
                   incarnation: Optional[int] = None) -> bool:
        old = self.status[rank]
        if incarnation is not None:
            self.incarnation[rank] = incarnation
        if old == new:
            return False
        self.status[rank] = new
        self.version += 1
        self.history.append((self.version, rank, old, new,
                             self.incarnation[rank]))
        return True


class HealthMonitor:
    """Heartbeat + detection for one rank (see module docstring)."""

    def __init__(self, cluster, rank: int,
                 config: Optional[HealthConfig] = None):
        self.cluster = cluster
        self.rank = rank
        self.config = config or HealthConfig()
        self.config.validate()
        self.env = cluster.env
        self.node = cluster[rank]
        self.counters = cluster.scope(rank)
        self.tracer = cluster.tracer
        self.view = MembershipView(cluster.n)
        self.incarnation = 1
        #: True between a chaos halt() and the matching resume()
        self.halted = False
        self._detectors: Dict[int, PhiAccrualDetector] = {}
        self._mesh: Dict[int, "HealthMonitor"] = {}
        self._on_dead: List[Callable[[int], None]] = []
        self._on_join: List[Callable[[int], None]] = []
        self._outage_spans: Dict[int, object] = {}
        self._started = False

    # ------------------------------------------------------------- wiring
    def on_dead(self, cb: Callable[[int], None]) -> None:
        self._on_dead.append(cb)

    def on_join(self, cb: Callable[[int], None]) -> None:
        self._on_join.append(cb)

    def is_dead(self, rank: int) -> bool:
        return self.view.status.get(rank) == DEAD

    def suspicion(self, rank: int) -> float:
        det = self._detectors.get(rank)
        return det.phi(self.env.now) if det is not None else 0.0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = self.env.now
        for peer in range(self.cluster.n):
            if peer != self.rank:
                self._detectors[peer] = PhiAccrualDetector(self.config, now)
        self.env.process(self._beat_loop(),
                         name=f"health{self.rank}:beat")

    # -------------------------------------------------------------- chaos
    def halt(self) -> None:
        """Crash injection: stop beating, sampling and evaluating."""
        self.halted = True

    def resume(self) -> None:
        """Restart with a new incarnation and a fresh (bootstrap) view —
        a restarted process has no memory of its old suspicions."""
        self.incarnation += 1
        self.halted = False
        now = self.env.now
        self.view = MembershipView(self.cluster.n)
        for det in self._detectors.values():
            det.last_rx = now
            det.mean_ns = float(self.config.period_ns)
            det.samples = 0
        self.counters.add("health.restarts")

    # ------------------------------------------------------------ beating
    def _beat_loop(self):
        period = self.config.period_ns
        while True:
            yield self.env.timeout(period)
            if self.halted:
                continue
            for peer in self._detectors:
                self._send_heartbeat(peer)
            self._evaluate()

    def _send_heartbeat(self, peer: int) -> None:
        inc = self.incarnation
        target = self._mesh.get(peer)

        def delivered(nic, msg, _target=target, _src=self.rank, _inc=inc):
            if _target is not None:
                _target.receive(_src, _inc, nic.env.now)

        self.node.nic.transmit(WireMsg(
            src=self.rank, dst=peer, nbytes=0, kind="hb",
            on_delivered=delivered))
        self.counters.add("health.heartbeats")

    def receive(self, src: int, incarnation: int, now: int) -> None:
        if self.halted:
            return
        det = self._detectors.get(src)
        if det is None:
            return
        known = self.view.incarnation.get(src, 1)
        if incarnation > known:
            # the peer restarted: DEAD -> ALIVE is legal exactly here
            det.last_rx = now
            det.mean_ns = float(self.config.period_ns)
            det.samples = 0
            if self.view.transition(src, ALIVE, incarnation=incarnation):
                self.counters.add("health.joins")
                self.tracer.log(now, "health.join", observer=self.rank,
                                rank=src, incarnation=incarnation)
                span = self._outage_spans.pop(src, None)
                if span is not None:
                    span.end(now, status="recovered")
                for cb in self._on_join:
                    cb(src)
            return
        if self.view.status[src] == DEAD:
            return  # stale incarnation of a dead peer: sticky
        det.sample(now)
        if self.view.status[src] == SUSPECT:
            if self.view.transition(src, ALIVE):
                self.counters.add("health.recoveries")

    def _evaluate(self) -> None:
        now = self.env.now
        for peer, det in self._detectors.items():
            status = self.view.status[peer]
            if status == DEAD:
                continue
            phi = det.phi(now)
            if phi >= self.config.phi_dead:
                self.view.transition(peer, DEAD)
                self.counters.add("health.deaths")
                self.tracer.log(now, "health.dead", observer=self.rank,
                                rank=peer, phi=round(phi, 2))
                # detection latency: last heartbeat seen -> declaration
                span = self.counters.span("health.detect", det.last_rx,
                                          peer=peer)
                if span is not None:
                    span.end(now)
                self._outage_spans[peer] = self.counters.span(
                    "health.outage", now, peer=peer)
                for cb in self._on_dead:
                    cb(peer)
            elif phi >= self.config.phi_suspect and status == ALIVE:
                self.view.transition(peer, SUSPECT)
                self.counters.add("health.suspects")
                self.tracer.log(now, "health.suspect", observer=self.rank,
                                rank=peer, phi=round(phi, 2))


def build_health(cluster, config: Optional[HealthConfig] = None,
                 start: bool = True) -> List[HealthMonitor]:
    """One started :class:`HealthMonitor` per rank, mesh-wired."""
    monitors = [HealthMonitor(cluster, r, config) for r in range(cluster.n)]
    mesh = {m.rank: m for m in monitors}
    for m in monitors:
        m._mesh = mesh
        if start:
            m.start()
    return monitors
