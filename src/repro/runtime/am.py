"""Active messages: typed remote invocation over the parcel machinery.

This is the Seriema/Active Access layer of the reproduction: handler
tables (the existing :class:`~repro.runtime.actions.ActionRegistry`),
invocation coalescing (:class:`~repro.runtime.coalesce.
CoalescingTransport` under the runtime) and credit-based backpressure
turn the raw one-sided parcel transport into an RPC substrate.

``rt.invoke(dst, action, payload)`` ships a **request** parcel carrying
a correlation id (``cid``) in the extended parcel header and returns a
:class:`~repro.runtime.lco.Future`.  The destination runs the action's
handler on arrival — dispatch-on-arrival, Active Access style — and
ships the handler's return value back as a **reply** parcel with the
same cid.  Replies are routed straight from the transport poll loop
(no scheduler dispatch charge): the poll that surfaces a reply settles
the future in the same pass.

Delivery semantics are at-least-once under the transport's retry
machinery, de-duplicated to effectively-once execution at the callee: a
bounded per-source window remembers recently served cids and re-sends
the cached reply for a retransmitted request instead of re-running the
handler.  Stale replies (reply arrives after the window forgot the
request, or a duplicate reply) are dropped and counted.

Backpressure is credit-based per destination: each in-flight invocation
to a rank consumes one credit, returned when its reply (or error)
arrives.  When credits run out the sender either **blocks** (pumping
the runtime until a credit frees — the default) or **sheds** with
:class:`CreditExhaustedError` (``on_exhausted="shed"``).

Handler contract for invoked actions: ``handler(rt, src, payload)``
returning the reply payload (``bytes``; ``None`` means ``b""``).
Generator handlers are driven to completion and their *return value* is
the reply.  A handler raising :class:`~repro.sim.core.SimulationError`
fails the caller's future with :class:`RemoteActionError` carrying the
message — errors are data, not silent drops.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.core import SimulationError
from ..sim.trace import Counters
from .lco import Future
from .parcel import Parcel

__all__ = ["ActiveMessageEngine", "AmConfig", "CreditExhaustedError",
           "RemoteActionError", "AM_REQ", "AM_REP", "AM_ERR"]

#: parcel ``flags`` values (0 = plain parcel, never an active message)
AM_REQ = 1
AM_REP = 2
AM_ERR = 3


class CreditExhaustedError(SimulationError):
    """Raised by ``invoke`` in shed mode when a destination's credits
    are exhausted."""

    def __init__(self, rank: int, dst: int):
        super().__init__(f"rank {rank}: no invoke credits for dst {dst}")
        self.dst = dst


class RemoteActionError(SimulationError):
    """The remote handler raised; carries the remote error message."""

    def __init__(self, dst: int, action: str, message: str):
        super().__init__(f"action {action!r} failed on rank {dst}: "
                         f"{message}")
        self.dst = dst
        self.action = action
        self.remote_message = message


@dataclass(frozen=True)
class AmConfig:
    """Knobs for the active-message engine.

    ``credits_per_dest``: max in-flight invocations per destination.
    ``on_exhausted``: ``"block"`` (pump the runtime until a credit
    frees; honours ``credit_wait_ns``) or ``"shed"`` (raise
    :class:`CreditExhaustedError` immediately).
    ``dedup_window``: per-source count of served cids remembered for
    retransmit suppression.
    """

    credits_per_dest: int = 32
    on_exhausted: str = "block"
    credit_wait_ns: Optional[int] = None
    dedup_window: int = 512

    def __post_init__(self):
        if self.credits_per_dest < 1:
            raise SimulationError("credits_per_dest must be >= 1")
        if self.on_exhausted not in ("block", "shed"):
            raise SimulationError(
                f"on_exhausted must be 'block' or 'shed', "
                f"got {self.on_exhausted!r}")
        if self.dedup_window < 1:
            raise SimulationError("dedup_window must be >= 1")


class _Pending:
    """One in-flight invocation on the caller side."""

    __slots__ = ("future", "dst", "action", "t0", "span")

    def __init__(self, future, dst, action, t0, span):
        self.future = future
        self.dst = dst
        self.action = action
        self.t0 = t0
        self.span = span


class ActiveMessageEngine:
    """Per-rank invocation engine attached to a :class:`Runtime`."""

    def __init__(self, rt, config: Optional[AmConfig] = None):
        self.rt = rt
        self.config = config or AmConfig()
        self.counters = rt.counters if rt.counters is not None \
            else Counters()
        self._next_cid = 1
        #: cid -> _Pending (caller side)
        self._pending: Dict[int, _Pending] = {}
        #: dst -> credits still available
        self._credits: Dict[int, int] = {}
        #: src -> OrderedDict(cid -> cached (flags, reply payload))
        self._served: Dict[int, OrderedDict] = {}

    # ------------------------------------------------------------- invoking
    def _take_credit(self, dst: int):
        """Acquire one invoke credit for ``dst`` (generator)."""
        cfg = self.config
        credits = self._credits.get(dst)
        if credits is None:
            credits = self._credits[dst] = cfg.credits_per_dest
        if credits <= 0:
            if cfg.on_exhausted == "shed":
                self.counters.add("am.credit_sheds")
                raise CreditExhaustedError(self.rt.rank, dst)
            self.counters.add("am.credit_stalls")
            ok = yield from self.rt.process_until(
                lambda: self._credits[dst] > 0, cfg.credit_wait_ns)
            if not ok:
                self.counters.add("am.credit_timeouts")
                raise CreditExhaustedError(self.rt.rank, dst)
        self._credits[dst] -= 1
        self.counters.set_gauge(f"am.credits.{dst}", self._credits[dst])

    def _return_credit(self, dst: int) -> None:
        self._credits[dst] = self._credits.get(
            dst, self.config.credits_per_dest - 1) + 1
        self.counters.set_gauge(f"am.credits.{dst}", self._credits[dst])

    def invoke(self, dst: int, action: str, payload: bytes = b""):
        """Start one remote invocation (generator → Future).

        The returned future settles when the reply arrives (value = the
        reply payload) or fails with :class:`RemoteActionError` /
        transport errors.  Local invocations (``dst == rank``) take the
        local queue, skipping the wire but running the same handler
        path.
        """
        rt = self.rt
        aid = rt.registry.id_of(action)
        now = rt.env.now
        yield from self._take_credit(dst)
        cid = self._next_cid
        self._next_cid += 1
        fut = Future()
        span = self.counters.span("am.invoke", now, peer=dst,
                                  nbytes=len(payload))
        self._pending[cid] = _Pending(fut, dst, action, now, span)
        self.counters.add("am.invokes")
        self.counters.set_gauge("am.pending", len(self._pending))
        parcel = Parcel(action=aid, src=rt.rank, payload=bytes(payload),
                        cid=cid, flags=AM_REQ)
        rt.parcels_sent += 1
        self.counters.add("rt.parcels_sent")
        if dst == rt.rank:
            rt._local.append(parcel)
            return fut
        try:
            yield from rt.transport.send(dst, parcel.encode())
        except SimulationError as exc:
            # the invocation never left this rank: settle the future
            # with the transport error and give the credit back
            del self._pending[cid]
            self._settle_gauges()
            self._return_credit(dst)
            if span is not None:
                span.end(rt.env.now, status="send_failed")
            self.counters.add("am.send_failures")
            fut.fail(exc)
        return fut

    def _settle_gauges(self) -> None:
        self.counters.set_gauge("am.pending", len(self._pending))

    # ------------------------------------------------------------- handling
    def handle(self, parcel: Parcel):
        """Dispatch one active-message parcel (generator).

        Called by :meth:`Runtime.progress` for every parcel whose
        ``flags`` are non-zero — requests are charged like any parcel
        dispatch and run the handler; replies settle the caller's
        future directly from the poll loop.
        """
        if parcel.flags == AM_REQ:
            yield from self._handle_request(parcel)
        elif parcel.flags in (AM_REP, AM_ERR):
            self._handle_reply(parcel)
        else:
            raise SimulationError(
                f"unknown active-message flags {parcel.flags}")

    def _reply(self, parcel: Parcel, flags: int, payload: bytes):
        """Ship (or locally enqueue) the reply for a request (generator)."""
        rt = self.rt
        reply = Parcel(action=parcel.action, src=rt.rank, payload=payload,
                       cid=parcel.cid, flags=flags)
        if parcel.src == rt.rank:
            rt._local.append(reply)
            return
        try:
            yield from rt.transport.send(parcel.src, reply.encode())
        except SimulationError:
            # the caller's retransmit/timeout machinery owns recovery;
            # we only account for the loss
            self.counters.add("am.reply_send_failures")

    def _handle_request(self, parcel: Parcel):
        rt = self.rt
        served = self._served.get(parcel.src)
        if served is None:
            served = self._served[parcel.src] = OrderedDict()
        cached = served.get(parcel.cid)
        if cached is not None:
            # retransmitted request: re-send the cached reply, never
            # re-run the handler (effectively-once execution)
            self.counters.add("am.duplicate_requests")
            yield from self._reply(parcel, cached[0], cached[1])
            return
        yield rt.env.timeout(rt.handler_cost_ns)
        handler = rt.registry.handler(parcel.action)
        try:
            result = handler(rt, parcel.src, parcel.payload)
            if hasattr(result, "send") and hasattr(result, "throw"):
                result = yield from result
            flags = AM_REP
            payload = b"" if result is None else bytes(result)
        except SimulationError as exc:
            self.counters.add("am.handler_errors")
            flags = AM_ERR
            payload = str(exc).encode()
        rt.parcels_run += 1
        self.counters.add("rt.parcels_run")
        self.counters.add("am.requests_served")
        served[parcel.cid] = (flags, payload)
        while len(served) > self.config.dedup_window:
            served.popitem(last=False)
        yield from self._reply(parcel, flags, payload)

    def _handle_reply(self, parcel: Parcel) -> None:
        pending = self._pending.pop(parcel.cid, None)
        if pending is None:
            # reply for a cid we no longer track (duplicate reply, or a
            # response that outlived the caller's interest)
            self.counters.add("am.stale_replies")
            return
        self._settle_gauges()
        self._return_credit(pending.dst)
        now = self.rt.env.now
        self.counters.observe(f"am.{pending.action}.latency_ns",
                              now - pending.t0)
        if parcel.flags == AM_ERR:
            self.counters.add("am.remote_errors")
            if pending.span is not None:
                pending.span.end(now, status="error")
            pending.future.fail(RemoteActionError(
                pending.dst, pending.action, parcel.payload.decode()))
            return
        self.counters.add("am.replies")
        if pending.span is not None:
            pending.span.end(now)
        pending.future.set(parcel.payload)

    # ------------------------------------------------------------- inspection
    def credits(self, dst: int) -> int:
        """Credits currently available for ``dst``."""
        return self._credits.get(dst, self.config.credits_per_dest)

    @property
    def pending(self) -> int:
        """Invocations awaiting a reply."""
        return len(self._pending)

    def stats(self) -> Dict[str, object]:
        """JSON-serializable engine snapshot (obs report section)."""
        return {
            "pending": len(self._pending),
            "credits": {str(d): c for d, c in sorted(self._credits.items())},
            "served_cached": {str(s): len(w)
                              for s, w in sorted(self._served.items())},
        }
