"""Parcels: the runtime's unit of remote work (HPX-5 terminology).

A parcel is an action id, the source rank, and an opaque payload.  Two
wire formats share the ``action`` field's high bit as a discriminator:

- **legacy** (24-byte header ``<qqq``: action, src, size): what every
  plain ``Runtime.send`` parcel has always used — byte-identical to the
  pre-AM era, so golden traces and wire accounting are unchanged when
  the active-message layer is idle;
- **extended** (40-byte header ``<qqqqq``: action|EXT, src, size, cid,
  flags): carries the request/reply correlation id and the AM flags the
  invocation layer (:mod:`repro.runtime.am`) needs.  ``flags`` is zero
  only on legacy parcels, so the decoder can route flagged parcels to
  the AM layer without a registry lookup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..sim.core import SimulationError

__all__ = ["Parcel", "PARCEL_HDR_SIZE", "PARCEL_EXT_HDR_SIZE"]

_HDR = struct.Struct("<qqq")  # action id, src, payload size
_EXT_HDR = struct.Struct("<qqqqq")  # action|EXT, src, size, cid, flags
PARCEL_HDR_SIZE = _HDR.size
PARCEL_EXT_HDR_SIZE = _EXT_HDR.size

#: high bit marking the extended header (action ids are small positives)
_EXT_BIT = 1 << 62


@dataclass(frozen=True)
class Parcel:
    """One unit of remote work.

    ``cid``/``flags`` are only non-zero on active-message parcels; plain
    parcels encode with the legacy 24-byte header.
    """

    action: int
    src: int
    payload: bytes
    cid: int = 0
    flags: int = 0

    def encode(self) -> bytes:
        if self.flags == 0 and self.cid == 0:
            return _HDR.pack(self.action, self.src,
                             len(self.payload)) + self.payload
        return _EXT_HDR.pack(self.action | _EXT_BIT, self.src,
                             len(self.payload), self.cid,
                             self.flags) + self.payload

    @staticmethod
    def decode(raw: bytes) -> "Parcel":
        if len(raw) < PARCEL_HDR_SIZE:
            raise SimulationError(f"short parcel: {len(raw)} bytes")
        action, src, size = _HDR.unpack_from(raw)
        cid = flags = 0
        hdr = PARCEL_HDR_SIZE
        if action & _EXT_BIT:
            if len(raw) < PARCEL_EXT_HDR_SIZE:
                raise SimulationError(
                    f"short extended parcel: {len(raw)} bytes")
            action, src, size, cid, flags = _EXT_HDR.unpack_from(raw)
            action &= ~_EXT_BIT
            hdr = PARCEL_EXT_HDR_SIZE
        payload = raw[hdr:hdr + size]
        if len(payload) != size:
            raise SimulationError(
                f"parcel payload truncated: header says {size}, "
                f"got {len(payload)}")
        return Parcel(action=action, src=src, payload=payload,
                      cid=cid, flags=flags)
