"""Parcels: the runtime's unit of remote work (HPX-5 terminology).

A parcel is an action id, the source rank, and an opaque payload.  The
wire format is a 24-byte header followed by the payload bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..sim.core import SimulationError

__all__ = ["Parcel", "PARCEL_HDR_SIZE"]

_HDR = struct.Struct("<qqq")  # action id, src, payload size
PARCEL_HDR_SIZE = _HDR.size


@dataclass(frozen=True)
class Parcel:
    """One unit of remote work."""

    action: int
    src: int
    payload: bytes

    def encode(self) -> bytes:
        return _HDR.pack(self.action, self.src, len(self.payload)) + self.payload

    @staticmethod
    def decode(raw: bytes) -> "Parcel":
        if len(raw) < PARCEL_HDR_SIZE:
            raise SimulationError(f"short parcel: {len(raw)} bytes")
        action, src, size = _HDR.unpack(raw[:PARCEL_HDR_SIZE])
        payload = raw[PARCEL_HDR_SIZE:PARCEL_HDR_SIZE + size]
        if len(payload) != size:
            raise SimulationError(
                f"parcel payload truncated: header says {size}, "
                f"got {len(payload)}")
        return Parcel(action=action, src=src, payload=payload)
