"""A network-managed global address space over Photon.

Mirrors the companion HPDC'16 design: the runtime allocates a symmetric
heap on every rank, registers it with the NIC once, and translates global
addresses to (rank, local offset) in a block-cyclic layout.  ``memput`` /
``memget`` are then *pure one-sided* Photon operations — the home rank's
CPU is never involved, which is precisely what Photon's buffer-management
API enables for runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..photon.api import Photon, PhotonBuffer
from ..sim.core import SimulationError

__all__ = ["GlobalAddressSpace", "gas_allocate"]


@dataclass(frozen=True)
class _Segment:
    rank: int
    buffer: PhotonBuffer


class GlobalAddressSpace:
    """One rank's handle on a block-cyclic global heap."""

    def __init__(self, photon: Photon, segments: List[_Segment],
                 block_size: int, total: int):
        self.ph = photon
        self.rank = photon.rank
        self.segments = segments
        self.block_size = block_size
        self.total = total
        self.n = len(segments)

    # ------------------------------------------------------------- addressing
    def locate(self, gaddr: int, length: int = 1) -> Tuple[int, int]:
        """Global address → (home rank, local address).

        ``[gaddr, gaddr+length)`` must not straddle a block boundary —
        split transfers at block granularity (``block_span`` helps).
        """
        if not 0 <= gaddr < self.total:
            raise SimulationError(f"global address {gaddr} out of range")
        block = gaddr // self.block_size
        offset = gaddr % self.block_size
        if offset + length > self.block_size:
            raise SimulationError(
                f"access [{gaddr}, {gaddr + length}) straddles a "
                f"{self.block_size}-byte block")
        home = block % self.n
        local_block = block // self.n
        seg = self.segments[home]
        return home, seg.buffer.addr + local_block * self.block_size + offset

    def block_span(self, gaddr: int, length: int):
        """Split [gaddr, gaddr+length) into per-block pieces."""
        out = []
        while length > 0:
            room = self.block_size - (gaddr % self.block_size)
            take = min(room, length)
            out.append((gaddr, take))
            gaddr += take
            length -= take
        return out

    def home_of(self, gaddr: int) -> int:
        return (gaddr // self.block_size) % self.n

    # ------------------------------------------------------------- data ops
    def memput(self, gaddr: int, data: bytes, scratch_addr: int):
        """Write ``data`` at a global address (generator; one-sided).

        ``scratch_addr``: registered local staging the bytes are sent
        from (caller-owned; reusable after return).
        """
        self.ph.memory.write(scratch_addr, data)
        yield self.ph.env.timeout(self.ph.memory.memcpy_cost_ns(len(data)))
        rids = []
        cursor = 0
        for piece_addr, take in self.block_span(gaddr, len(data)):
            home, laddr = self.locate(piece_addr, take)
            rkey = self.segments[home].buffer.rkey
            rid = yield from self.ph.post_os_put(
                home, scratch_addr + cursor, take, laddr, rkey)
            rids.append(rid)
            cursor += take
        yield from self.ph.wait_all(rids)
        for rid in rids:
            self.ph.free_request(rid)

    def memget(self, gaddr: int, length: int, scratch_addr: int):
        """Read ``length`` bytes from a global address (generator → bytes)."""
        rids = []
        cursor = 0
        for piece_addr, take in self.block_span(gaddr, length):
            home, laddr = self.locate(piece_addr, take)
            rkey = self.segments[home].buffer.rkey
            rid = yield from self.ph.post_os_get(
                home, scratch_addr + cursor, take, laddr, rkey)
            rids.append(rid)
            cursor += take
        yield from self.ph.wait_all(rids)
        for rid in rids:
            self.ph.free_request(rid)
        # owned copy: the caller keeps the payload, the scratch area is reused
        data = self.ph.memory.read_bytes(scratch_addr, length)
        yield self.ph.env.timeout(self.ph.memory.memcpy_cost_ns(length))
        return data

    def memput_pwc(self, gaddr: int, data: bytes, scratch_addr: int,
                   remote_cid: int):
        """Put that also raises a completion at the *home* rank (generator).

        This is the runtime pattern the PWC interface exists for: deliver
        data into the global heap and notify the owner in one operation.
        """
        if len(data) > self.block_size - gaddr % self.block_size:
            raise SimulationError("memput_pwc must stay within one block")
        self.ph.memory.write(scratch_addr, data)
        yield self.ph.env.timeout(self.ph.memory.memcpy_cost_ns(len(data)))
        home, laddr = self.locate(gaddr, len(data))
        rkey = self.segments[home].buffer.rkey
        yield from self.ph.put_pwc(home, scratch_addr, len(data), laddr,
                                   rkey, remote_cid=remote_cid)


def gas_allocate(endpoints: List[Photon], total: int,
                 block_size: int = 4096) -> List[GlobalAddressSpace]:
    """Collectively allocate a global heap of ``total`` bytes.

    Runs at t=0; the (addr, rkey) exchange models the runtime's startup
    ``photon_exchange``.
    """
    n = len(endpoints)
    if total <= 0 or block_size <= 0:
        raise SimulationError("total and block_size must be positive")
    nblocks = -(-total // block_size)
    per_rank_blocks = -(-nblocks // n)
    seg_size = per_rank_blocks * block_size
    segments = [_Segment(rank=ep.rank, buffer=ep.buffer(seg_size))
                for ep in endpoints]
    return [GlobalAddressSpace(ep, segments, block_size, total)
            for ep in endpoints]
