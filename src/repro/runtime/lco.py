"""Local control objects: futures and and-gates (HPX-5 LCO analogues).

LCOs synchronise parcel handlers with rank-local code: a handler sets a
future; the main program waits on it while pumping the runtime.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.core import SimulationError

__all__ = ["Future", "AndGate", "ReduceLCO"]


class Future:
    """Single-assignment value."""

    __slots__ = ("_value", "_set")

    def __init__(self):
        self._value: Any = None
        self._set = False

    @property
    def ready(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        if self._set:
            raise SimulationError("future set twice")
        self._value = value
        self._set = True

    def get(self) -> Any:
        if not self._set:
            raise SimulationError("future read before set")
        return self._value

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until the future is set (generator → value)."""
        ok = yield from rt.process_until(lambda: self._set, timeout_ns)
        if not ok:
            raise SimulationError("future wait timed out")
        return self._value


class AndGate:
    """Counts down from N; ready when all inputs arrived."""

    __slots__ = ("_remaining",)

    def __init__(self, count: int):
        if count < 0:
            raise SimulationError("AndGate needs count >= 0")
        self._remaining = count

    @property
    def ready(self) -> bool:
        return self._remaining == 0

    @property
    def remaining(self) -> int:
        return self._remaining

    def arrive(self, n: int = 1) -> None:
        if self._remaining < n:
            raise SimulationError("AndGate over-arrived")
        self._remaining -= n

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until all inputs arrived (generator)."""
        ok = yield from rt.process_until(lambda: self._remaining == 0,
                                         timeout_ns)
        if not ok:
            raise SimulationError("AndGate wait timed out")


class ReduceLCO:
    """Accumulates N contributions with a binary operator."""

    __slots__ = ("_remaining", "_op", "_value")

    def __init__(self, count: int, op, initial: Any):
        if count < 1:
            raise SimulationError("ReduceLCO needs count >= 1")
        self._remaining = count
        self._op = op
        self._value = initial

    @property
    def ready(self) -> bool:
        return self._remaining == 0

    def contribute(self, value: Any) -> None:
        if self._remaining == 0:
            raise SimulationError("ReduceLCO over-contributed")
        self._value = self._op(self._value, value)
        self._remaining -= 1

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until reduced (generator → value)."""
        ok = yield from rt.process_until(lambda: self._remaining == 0,
                                         timeout_ns)
        if not ok:
            raise SimulationError("ReduceLCO wait timed out")
        return self._value
