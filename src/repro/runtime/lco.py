"""Local control objects: futures and and-gates (HPX-5 LCO analogues).

LCOs synchronise parcel handlers with rank-local code: a handler sets a
future; the main program waits on it while pumping the runtime.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.core import SimulationError

__all__ = ["Future", "AndGate", "ReduceLCO"]


class Future:
    """Single-assignment value (or error).

    A future settles exactly once, either with :meth:`set` (a value) or
    :meth:`fail` (an exception).  Readers of a failed future —
    :meth:`get` and :meth:`wait` — re-raise the stored exception; this is
    how remote invocation errors propagate back to the invoker
    (:mod:`repro.runtime.am`).
    """

    __slots__ = ("_value", "_set", "_error")

    def __init__(self):
        self._value: Any = None
        self._set = False
        self._error: Optional[BaseException] = None

    @property
    def ready(self) -> bool:
        return self._set

    @property
    def failed(self) -> bool:
        return self._set and self._error is not None

    def set(self, value: Any = None) -> None:
        if self._set:
            raise SimulationError("future set twice")
        self._value = value
        self._set = True

    def fail(self, error: BaseException) -> None:
        """Settle the future with an exception instead of a value."""
        if self._set:
            raise SimulationError("future set twice")
        self._error = error
        self._set = True

    def get(self) -> Any:
        if not self._set:
            raise SimulationError("future read before set")
        if self._error is not None:
            raise self._error
        return self._value

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until the future settles (generator → value).

        Raises the stored exception if the future failed.
        """
        ok = yield from rt.process_until(lambda: self._set, timeout_ns)
        if not ok:
            raise SimulationError("future wait timed out")
        if self._error is not None:
            raise self._error
        return self._value


class AndGate:
    """Counts down from N; ready when all inputs arrived."""

    __slots__ = ("_remaining",)

    def __init__(self, count: int):
        if count < 0:
            raise SimulationError("AndGate needs count >= 0")
        self._remaining = count

    @property
    def ready(self) -> bool:
        return self._remaining == 0

    @property
    def remaining(self) -> int:
        return self._remaining

    def arrive(self, n: int = 1) -> None:
        if self._remaining < n:
            raise SimulationError("AndGate over-arrived")
        self._remaining -= n

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until all inputs arrived (generator)."""
        ok = yield from rt.process_until(lambda: self._remaining == 0,
                                         timeout_ns)
        if not ok:
            raise SimulationError("AndGate wait timed out")


class ReduceLCO:
    """Accumulates N contributions with a binary operator."""

    __slots__ = ("_remaining", "_op", "_value")

    def __init__(self, count: int, op, initial: Any):
        if count < 1:
            raise SimulationError("ReduceLCO needs count >= 1")
        self._remaining = count
        self._op = op
        self._value = initial

    @property
    def ready(self) -> bool:
        return self._remaining == 0

    def contribute(self, value: Any) -> None:
        if self._remaining == 0:
            raise SimulationError("ReduceLCO over-contributed")
        self._value = self._op(self._value, value)
        self._remaining -= 1

    def wait(self, rt, timeout_ns: Optional[int] = None):
        """Pump the runtime until reduced (generator → value)."""
        ok = yield from rt.process_until(lambda: self._remaining == 0,
                                         timeout_ns)
        if not ok:
            raise SimulationError("ReduceLCO wait timed out")
        return self._value
