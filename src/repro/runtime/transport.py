"""Runtime network transports: Photon-PWC vs MPI-ISIR.

This is the integration point the paper's runtime experiments measure:
the same parcel traffic carried by

- :class:`PhotonTransport` (PWC): small parcels ride an eager ledger write
  and surface via completion probes — no matching, no preposted receives;
  large parcels use the rendezvous buffer-advertisement protocol.
- :class:`MpiTransport` (ISIR — "irecv/isend" as in HPX-5's MPI network):
  a window of wildcard irecvs is preposted; parcels arrive through the
  tag-matching engine with its bounce-buffer copies; completed receives
  are reaped and reposted.

Both expose the same two generators: ``send(dst, raw)`` and ``poll() ->
raw | None``, so the scheduler and the applications are transport-blind.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..minimpi.comm import Comm
from ..minimpi.protocol import MPIRequest
from ..photon.api import Photon
from ..sim.core import SimulationError
from ..verbs.enums import WCStatus

__all__ = ["PhotonTransport", "MpiTransport", "PeerDownError", "PARCEL_TAG"]

#: reserved tag/cid space for parcel traffic
PARCEL_TAG = (1 << 50) + 7


def _parcel_match(_src: int, cid: int) -> bool:
    """Probe predicate for parcel traffic (hoisted: poll() is hot)."""
    return cid == PARCEL_TAG


class PeerDownError(SimulationError):
    """Raised by ``send`` when the peer's circuit breaker is open."""

    def __init__(self, rank: int, peer: int):
        super().__init__(f"rank {rank}: peer {peer} marked down "
                         "(circuit breaker open)")
        self.peer = peer


class _PeerHealth:
    """Circuit-breaker state for one destination rank."""

    __slots__ = ("failures", "state", "open_until")

    def __init__(self):
        self.failures = 0
        self.state = "closed"  # closed | open | half-open
        self.open_until = 0


class PhotonTransport:
    """Parcels over Photon PWC (eager) + rendezvous (large).

    The transport layers delivery guarantees on top of Photon's own
    retry/recovery: eager parcels whose reliable op fails are re-sent (up
    to ``max_send_retries`` extra attempts), failed rendezvous fetches are
    reposted, and a per-peer circuit breaker trips after
    ``breaker_threshold`` consecutive failures — further sends to that
    peer fail fast with :class:`PeerDownError` until
    ``breaker_cooldown_ns`` elapses, after which one half-open probe send
    decides whether the peer is back.
    """

    def __init__(self, photon: Photon, max_parcel: int = 1 << 20,
                 scratch_slots: int = 8, max_send_retries: int = 2,
                 breaker_threshold: int = 3,
                 breaker_cooldown_ns: int = 2_000_000):
        self.ph = photon
        self.rank = photon.rank
        self.max_parcel = max_parcel
        self.max_send_retries = max_send_retries
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_ns = breaker_cooldown_ns
        # staging ring for rendezvous-size parcels (send side), plus one
        # landing buffer (recv side)
        self._send_slots = [photon.buffer(max_parcel)
                            for _ in range(scratch_slots)]
        #: rendezvous request still owning each staging slot (pipelining:
        #: we only block when a slot must be reused)
        self._slot_rids: List[Optional[int]] = [None] * scratch_slots
        #: per-slot (dst, nbytes, resends so far) for the owning request —
        #: the payload persists in the slot, so a failed send can be
        #: retried in place with the same budget eager parcels get
        self._slot_meta: List[Optional[tuple]] = [None] * scratch_slots
        #: number of staging slots with a live request (O(1) poll guard)
        self._rndv_live = 0
        self._send_cursor = 0
        #: landing ring: concurrent inbound rendezvous fetches
        self._landings = [photon.buffer(max_parcel)
                          for _ in range(scratch_slots)]
        self._free_landings = list(range(scratch_slots))
        #: in-flight fetches: (request id, landing index, RecvInfo, attempts)
        self._fetches: deque = deque()
        #: in-flight eager parcels: (dst, op id, raw, resends so far)
        self._eager_ops: deque = deque()
        self._health: Dict[int, _PeerHealth] = {}
        #: failure-detector handle (None unless attach_health was called)
        self.monitor = None
        #: bounded log of (t, peer, old_state, new_state) — the breaker
        #: legality invariant checker consumes this
        self.breaker_log: deque = deque(maxlen=4096)
        self._open_spans: Dict[int, object] = {}

    # --------------------------------------------------------- circuit breaker
    def _peer_health(self, dst: int) -> _PeerHealth:
        h = self._health.get(dst)
        if h is None:
            h = self._health[dst] = _PeerHealth()
        return h

    def attach_health(self, monitor) -> None:
        """Consume a failure detector: a confirmed-dead peer opens the
        breaker immediately (no need to burn ``breaker_threshold``
        parcel failures first) and a rejoin closes it."""
        self.monitor = monitor
        monitor.on_dead(self._on_peer_dead)
        monitor.on_join(self._on_peer_join)

    def _on_peer_dead(self, rank: int) -> None:
        if rank == self.rank:
            return
        h = self._peer_health(rank)
        if h.state != "open":
            self.ph.counters.add("transport.peer_down")
            self._transition(rank, h, "open")
        h.open_until = self.ph.env.now + self.breaker_cooldown_ns

    def _on_peer_join(self, rank: int) -> None:
        if rank == self.rank:
            return
        h = self._peer_health(rank)
        h.failures = 0
        if h.state != "closed":
            self.ph.counters.add("transport.peer_up")
            self._transition(rank, h, "closed")

    def _transition(self, dst: int, h: _PeerHealth, new_state: str) -> None:
        """Move the breaker and export the transition through obs."""
        old = h.state
        if old == new_state:
            return
        h.state = new_state
        now = self.ph.env.now
        self.breaker_log.append((now, dst, old, new_state))
        self.ph.counters.add(
            f"transport.breaker_{new_state.replace('-', '_')}")
        if new_state == "open":
            self._open_spans[dst] = self.ph.counters.span(
                "transport.breaker_open", now, peer=dst)
        elif new_state == "closed":
            span = self._open_spans.pop(dst, None)
            if span is not None:
                span.end(now, status="recovered")

    def peer_is_down(self, dst: int) -> bool:
        """True while the breaker is open and the cooldown has not expired."""
        h = self._health.get(dst)
        return (h is not None and h.state == "open"
                and self.ph.env.now < h.open_until)

    def _record_failure(self, dst: int) -> None:
        h = self._peer_health(dst)
        h.failures += 1
        if h.state == "half-open":
            self.ph.counters.add("transport.probe_failures")
        if h.state == "half-open" or h.failures >= self.breaker_threshold:
            if h.state != "open":
                self.ph.counters.add("transport.peer_down")
                self._transition(dst, h, "open")
            h.open_until = self.ph.env.now + self.breaker_cooldown_ns

    def _record_success(self, dst: int) -> None:
        h = self._peer_health(dst)
        h.failures = 0
        if h.state != "closed":
            if h.state == "half-open":
                self.ph.counters.add("transport.probe_successes")
            self.ph.counters.add("transport.peer_up")
            self._transition(dst, h, "closed")

    def _check_breaker(self, dst: int) -> None:
        h = self._peer_health(dst)
        if self.monitor is not None and self.monitor.is_dead(dst):
            # confirmed dead: fail fast regardless of breaker cooldown
            self.ph.counters.add("transport.fast_fails")
            raise PeerDownError(self.rank, dst)
        if h.state == "open":
            if self.ph.env.now < h.open_until:
                self.ph.counters.add("transport.fast_fails")
                raise PeerDownError(self.rank, dst)
            # cooldown elapsed: let exactly this send probe the peer
            self._transition(dst, h, "half-open")

    # ----------------------------------------------------------------- send
    def send(self, dst: int, raw: bytes):
        """Ship one encoded parcel (generator).

        Raises :class:`PeerDownError` without touching the wire when the
        destination's circuit breaker is open.
        """
        if len(raw) > self.max_parcel:
            raise SimulationError(
                f"parcel of {len(raw)}B exceeds transport max "
                f"{self.max_parcel}B")
        self._check_breaker(dst)
        if len(raw) <= self.ph.config.eager_limit:
            op = yield from self.ph.send_pwc(dst, raw, remote_cid=PARCEL_TAG)
            if op is not None:
                self._eager_ops.append((dst, op, bytes(raw), 0))
        else:
            idx = self._send_cursor
            self._send_cursor = (self._send_cursor + 1) % len(self._send_slots)
            # slot reuse: the prior advertisement must settle — retrying
            # in place if it failed — before we overwrite the payload
            yield from self._settle_slot(idx, blocking=True)
            slot = self._send_slots[idx]
            self.ph.memory.write(slot.addr, raw)
            yield self.ph.env.timeout(
                self.ph.memory.memcpy_cost_ns(len(raw)))
            rid = yield from self.ph.send_rdma(dst, slot.addr, len(raw),
                                               tag=PARCEL_TAG)
            self._slot_rids[idx] = rid
            self._slot_meta[idx] = (dst, len(raw), 0)
            self._rndv_live += 1

    def _settle_slot(self, idx: int, blocking: bool):
        """Settle the rendezvous request owning a staging slot (generator).

        A failed send is re-issued from the same slot — the payload is
        still there until it is overwritten — with the same
        ``max_send_retries`` budget eager parcels get; exhausted retries
        count as ``transport.parcel_failures``.  ``blocking``: wait for
        the request (and any retries) to finish, as the slot is about to
        be reused; non-blocking callers (:meth:`poll`) bail out while a
        request is still in flight.
        """
        rid = self._slot_rids[idx]
        if rid is None:
            return
        while True:
            if blocking:
                yield from self.ph.wait(rid)
            elif not self.ph.test(rid):
                return
            failed = self.ph.request_info(rid).failed
            self.ph.free_request(rid)
            dst, nbytes, attempts = self._slot_meta[idx]
            if not failed:
                self._slot_rids[idx] = None
                self._slot_meta[idx] = None
                self._rndv_live -= 1
                self._record_success(dst)
                return
            self._record_failure(dst)
            if (attempts < self.max_send_retries
                    and not self.peer_is_down(dst)):
                self.ph.counters.add("transport.parcel_resends")
                rid = yield from self.ph.send_rdma(
                    dst, self._send_slots[idx].addr, nbytes, tag=PARCEL_TAG)
                self._slot_rids[idx] = rid
                self._slot_meta[idx] = (dst, nbytes, attempts + 1)
                if not blocking:
                    return
            else:
                self.ph.counters.add("transport.parcel_failures")
                self._slot_rids[idx] = None
                self._slot_meta[idx] = None
                self._rndv_live -= 1
                return

    def _reap_eager(self):
        """Settle tracked eager ops; returns parcels needing a resend."""
        ops = self._eager_ops
        if not ops:
            return ()
        # common case per poll: every tracked op is still in flight —
        # detect that without churning the deque
        op_status = self.ph.op_status
        for dst, op, _raw, _attempts in ops:
            if op_status(dst, op) is not None:
                break
        else:
            return ()
        resend = []
        still: deque = deque()
        while self._eager_ops:
            dst, op, raw, attempts = self._eager_ops.popleft()
            st = self.ph.op_status(dst, op)
            if st is None:
                still.append((dst, op, raw, attempts))
                continue
            self.ph.free_op(dst, op)
            if st is WCStatus.SUCCESS:
                self._record_success(dst)
                continue
            self._record_failure(dst)
            if attempts < self.max_send_retries and not self.peer_is_down(dst):
                self.ph.counters.add("transport.parcel_resends")
                resend.append((dst, raw, attempts + 1))
            else:
                self.ph.counters.add("transport.parcel_failures")
        self._eager_ops = still
        return resend

    # ----------------------------------------------------------------- poll
    def poll_pending(self) -> bool:
        """True when :meth:`poll` could do more than charge poll time.

        Pure check (no yields): eager sends awaiting settlement, queued
        messages or rendezvous advertisements, in-flight landing fetches,
        or anything the endpoint's own progress pass could act on.
        """
        ph = self.ph
        return bool(self._eager_ops or self._fetches or self._rndv_live
                    or ph.messages or ph.infos or ph.progress_pending())

    def poll(self, charge_poll: bool = True):
        """One progress pass; returns an encoded parcel or None (generator).

        Large parcels arrive as rendezvous advertisements; fetches are
        issued concurrently into the landing ring (pipelined, like an
        irecv window) and completed ones are handed out in issue order.
        Failed sends/fetches detected here drive the retry and breaker
        machinery.  ``charge_poll=False``: the caller already charged the
        poll interval (see :meth:`PhotonEndpoint._progress_once`).
        """
        # settle eager sends and re-ship the ones Photon gave up on
        for dst, raw, attempts in self._reap_eager():
            op = yield from self.ph.send_pwc(dst, raw, remote_cid=PARCEL_TAG)
            if op is not None:
                self._eager_ops.append((dst, op, raw, attempts))
        # opportunistically settle rendezvous sends so a failed large
        # parcel is re-shipped now instead of at the next slot reuse
        if self._rndv_live:
            for idx, rid in enumerate(self._slot_rids):
                if rid is not None:
                    yield from self._settle_slot(idx, blocking=False)
        # inlined ph.probe_message(_parcel_match): one fewer generator
        # set-up on the hottest polling chain in the runtime
        yield from self.ph._progress_once(charge_poll)
        got = self.ph._pop_message(_parcel_match)
        if got is not None:
            return got[2]
        # launch fetches for any newly advertised rendezvous parcels
        while self._free_landings:
            info = self.ph._match_info(src=-1, tag=PARCEL_TAG)
            if info is None:
                break
            idx = self._free_landings.pop()
            rid = yield from self.ph.post_os_get(
                info.src, self._landings[idx].addr, info.size,
                info.addr, info.rkey)
            self._fetches.append((rid, idx, info, 0))
        # hand out the oldest settled fetch
        if self._fetches and self.ph.test(self._fetches[0][0]):
            rid, idx, info, attempts = self._fetches.popleft()
            failed = self.ph.request_info(rid).failed
            self.ph.free_request(rid)
            if failed:
                self.ph.counters.add("transport.fetch_failures")
                self._record_failure(info.src)
                if attempts < self.max_send_retries:
                    # the read is idempotent — repost into the same landing
                    rid = yield from self.ph.post_os_get(
                        info.src, self._landings[idx].addr, info.size,
                        info.addr, info.rkey)
                    self._fetches.append((rid, idx, info, attempts + 1))
                else:
                    self._free_landings.append(idx)
                    self.ph.counters.add("transport.parcel_failures")
                return None
            self._record_success(info.src)
            # owned copy: the landing slot is recycled on the next line
            raw = self.ph.memory.read_bytes(self._landings[idx].addr,
                                            info.size)
            yield self.ph.env.timeout(
                self.ph.memory.memcpy_cost_ns(info.size))
            self._free_landings.append(idx)
            yield from self._send_fin(info)
            return raw
        return None

    def _send_fin(self, info):
        """Complete the sender's rendezvous request (generator)."""
        from ..photon.wire import FinEntry
        peer = self.ph._peer(info.src)
        yield from self.ph._post_ring_entry(
            peer, "fin", lambda seq: FinEntry(seq=seq, req=info.req).pack())

    def stats(self) -> Dict[str, object]:
        """JSON-serializable transport snapshot (obs report section)."""
        return {
            "kind": "photon",
            "eager_inflight": len(self._eager_ops),
            "fetches_inflight": len(self._fetches),
            "free_landings": len(self._free_landings),
            "send_slots_busy": sum(1 for r in self._slot_rids
                                   if r is not None),
            "breaker_transitions": [
                {"t": t, "peer": p, "from": old, "to": new}
                for t, p, old, new in self.breaker_log],
            "peers": {
                str(r): {"state": h.state, "failures": h.failures,
                         "open_until": h.open_until}
                for r, h in self._health.items()},
        }


class MpiTransport:
    """Parcels over minimpi isend + a preposted wildcard-irecv window."""

    def __init__(self, comm: Comm, max_parcel: int = 1 << 20,
                 window: int = 16):
        self.comm = comm
        self.rank = comm.rank
        self.max_parcel = max_parcel
        self.window = window
        self._recv_bufs: List[int] = [
            comm.memory.alloc(max_parcel) for _ in range(window)]
        self._recv_reqs: List[Optional[MPIRequest]] = [None] * window
        self._send_slots = [comm.memory.alloc(max_parcel) for _ in range(8)]
        self._send_cursor = 0
        self._inflight: List[MPIRequest] = []
        self._primed = False

    def _prime(self):
        """Post the initial wildcard receive window (generator)."""
        from ..minimpi.status import ANY_SOURCE
        for i in range(self.window):
            req = yield from self.comm.irecv(self._recv_bufs[i],
                                             self.max_parcel,
                                             src=ANY_SOURCE, tag=PARCEL_TAG)
            self._recv_reqs[i] = req
        self._primed = True

    def send(self, dst: int, raw: bytes):
        """Ship one encoded parcel (generator)."""
        if not self._primed:
            yield from self._prime()
        if len(raw) > self.max_parcel:
            raise SimulationError(
                f"parcel of {len(raw)}B exceeds transport max "
                f"{self.max_parcel}B")
        slot = self._send_slots[self._send_cursor]
        self._send_cursor = (self._send_cursor + 1) % len(self._send_slots)
        self.comm.memory.write(slot, raw)
        yield self.comm.env.timeout(
            self.comm.memory.memcpy_cost_ns(len(raw)))
        req = yield from self.comm.isend(slot, len(raw), dst, PARCEL_TAG)
        self._inflight.append(req)
        # reap finished sends opportunistically — popping them from the
        # engine's live-request table like the recv path does, else done
        # isends accumulate there for the life of the run
        live: List[MPIRequest] = []
        for r in self._inflight:
            if r.done:
                self.comm.engine.live_requests.pop(r.rid, None)
            else:
                live.append(r)
        self._inflight = live
        if len(self._inflight) >= len(self._send_slots):
            yield from self.comm.waitall(list(self._inflight))
            self._inflight.clear()

    def poll(self, charge_poll: bool = True):
        """One progress pass; returns an encoded parcel or None (generator).

        ``charge_poll`` is accepted for interface uniformity with
        :class:`PhotonTransport`; the tag-matching engine charges its own
        progress cost either way.
        """
        from ..minimpi.status import ANY_SOURCE
        if not self._primed:
            yield from self._prime()
        yield from self.comm.engine._progress_once()
        for i, req in enumerate(self._recv_reqs):
            if req is not None and req.done:
                # owned copy: the window buffer is immediately re-posted
                raw = self.comm.memory.read_bytes(self._recv_bufs[i],
                                                  req.status.count)
                yield self.comm.env.timeout(
                    self.comm.memory.memcpy_cost_ns(req.status.count))
                self.comm.engine.live_requests.pop(req.rid, None)
                new_req = yield from self.comm.irecv(
                    self._recv_bufs[i], self.max_parcel,
                    src=ANY_SOURCE, tag=PARCEL_TAG)
                self._recv_reqs[i] = new_req
                return raw
        return None

    def stats(self) -> Dict[str, object]:
        """JSON-serializable transport snapshot (obs report section)."""
        return {
            "kind": "mpi",
            "window": self.window,
            "window_armed": sum(1 for r in self._recv_reqs if r is not None),
            "sends_inflight": len(self._inflight),
        }
