"""Parcel-based asynchronous many-task runtime (HPX-5 analogue).

The runtime consumes Photon (or minimpi) through the transport layer,
reproducing the paper's "middleware under a runtime system" integration:
parcels, an action registry, per-rank schedulers, LCOs and a one-sided
global address space.
"""

from .actions import ActionRegistry
from .coalesce import CoalescingTransport
from .gas import GlobalAddressSpace, gas_allocate
from .health import (ALIVE, DEAD, SUSPECT, HealthConfig, HealthMonitor,
                     MembershipView, PhiAccrualDetector, build_health)
from .lco import AndGate, Future, ReduceLCO
from .parcel import PARCEL_HDR_SIZE, Parcel
from .scheduler import Runtime
from .transport import MpiTransport, PARCEL_TAG, PhotonTransport

__all__ = [
    "ActionRegistry",
    "CoalescingTransport",
    "GlobalAddressSpace", "gas_allocate",
    "ALIVE", "DEAD", "SUSPECT", "HealthConfig", "HealthMonitor",
    "MembershipView", "PhiAccrualDetector", "build_health",
    "AndGate", "Future", "ReduceLCO",
    "PARCEL_HDR_SIZE", "Parcel",
    "Runtime",
    "MpiTransport", "PARCEL_TAG", "PhotonTransport",
]


def build_runtime(cluster, registry, transport="photon", photon=None,
                  comms=None, max_parcel: int = 1 << 20):
    """Assemble one Runtime per rank on the chosen transport.

    ``photon``: endpoints from :func:`repro.photon.photon_init` (photon
    transport); ``comms``: communicators from
    :func:`repro.minimpi.mpi_init` (mpi transport).
    """
    from ..sim.core import SimulationError

    runtimes = []
    for r in range(cluster.n):
        if transport == "photon":
            if photon is None:
                raise SimulationError("photon endpoints required")
            tp = PhotonTransport(photon[r], max_parcel=max_parcel)
        elif transport == "mpi":
            if comms is None:
                raise SimulationError("mpi communicators required")
            tp = MpiTransport(comms[r], max_parcel=max_parcel)
        else:
            raise SimulationError(f"unknown transport {transport!r}")
        runtimes.append(Runtime(r, cluster.env, tp, registry,
                                counters=cluster.scope(r)))
    return runtimes
