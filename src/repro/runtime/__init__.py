"""Parcel-based asynchronous many-task runtime (HPX-5 analogue).

The runtime consumes Photon (or minimpi) through the transport layer,
reproducing the paper's "middleware under a runtime system" integration:
parcels, an action registry, per-rank schedulers, LCOs, a one-sided
global address space, and an active-message invocation layer
(:mod:`repro.runtime.am`).
"""

from .actions import ActionRegistry
from .am import (AM_ERR, AM_REP, AM_REQ, ActiveMessageEngine, AmConfig,
                 CreditExhaustedError, RemoteActionError)
from .coalesce import CoalescingTransport
from .gas import GlobalAddressSpace, gas_allocate
from .health import (ALIVE, DEAD, SUSPECT, HealthConfig, HealthMonitor,
                     MembershipView, PhiAccrualDetector, build_health)
from .lco import AndGate, Future, ReduceLCO
from .parcel import PARCEL_EXT_HDR_SIZE, PARCEL_HDR_SIZE, Parcel
from .scheduler import Runtime
from .transport import MpiTransport, PARCEL_TAG, PeerDownError, PhotonTransport

__all__ = [
    "ActionRegistry",
    "AM_ERR", "AM_REP", "AM_REQ", "ActiveMessageEngine", "AmConfig",
    "CreditExhaustedError", "RemoteActionError",
    "CoalescingTransport",
    "GlobalAddressSpace", "gas_allocate",
    "ALIVE", "DEAD", "SUSPECT", "HealthConfig", "HealthMonitor",
    "MembershipView", "PhiAccrualDetector", "build_health",
    "AndGate", "Future", "ReduceLCO",
    "PARCEL_EXT_HDR_SIZE", "PARCEL_HDR_SIZE", "Parcel",
    "Runtime",
    "MpiTransport", "PARCEL_TAG", "PeerDownError", "PhotonTransport",
]


def build_runtime(cluster, registry, transport="photon", photon=None,
                  comms=None, max_parcel: int = 1 << 20,
                  am: bool = False, coalesce=None, am_config=None,
                  coalesce_opts=None):
    """Assemble one Runtime per rank on the chosen transport.

    ``photon``: endpoints from :func:`repro.photon.photon_init` (photon
    transport); ``comms``: communicators from
    :func:`repro.minimpi.mpi_init` (mpi transport).

    ``am=True`` attaches an :class:`~repro.runtime.am.
    ActiveMessageEngine` to every rank (enabling ``rt.invoke``) and —
    unless ``coalesce=False`` — wraps the transport in a
    :class:`CoalescingTransport`, so sub-eager-limit invocations are
    batched per destination by default (a parcel bigger than the batch
    threshold still ships alone immediately).  ``coalesce=True`` wraps
    the transport without requiring AM.  ``am_config`` is an
    :class:`~repro.runtime.am.AmConfig`; ``coalesce_opts`` is a dict of
    :class:`CoalescingTransport` keyword arguments.
    """
    from ..sim.core import SimulationError

    if coalesce is None:
        coalesce = am
    runtimes = []
    for r in range(cluster.n):
        if transport == "photon":
            if photon is None:
                raise SimulationError("photon endpoints required")
            tp = PhotonTransport(photon[r], max_parcel=max_parcel)
        elif transport == "mpi":
            if comms is None:
                raise SimulationError("mpi communicators required")
            tp = MpiTransport(comms[r], max_parcel=max_parcel)
        else:
            raise SimulationError(f"unknown transport {transport!r}")
        if coalesce:
            tp = CoalescingTransport(tp, **(coalesce_opts or {}))
        rt = Runtime(r, cluster.env, tp, registry,
                     counters=cluster.scope(r))
        if am:
            rt.enable_am(am_config)
        runtimes.append(rt)
    return runtimes
