"""minimpi: the from-scratch two-sided MPI comparator.

Implements the standard MPI transport design (eager bounce-buffer copies,
RTS/RGET/FIN rendezvous, tag matching with wildcards and an unexpected
queue) on the *same* verbs substrate Photon runs on, plus collectives and
MPI-3-style RMA windows.  See DESIGN.md §2 for why this is the right
baseline shape.
"""

from .comm import Comm, mpi_init
from .matching import MatchEngine, PostedRecv, UnexpectedMsg
from .protocol import Engine, MPIRequest
from .rma import Win, win_allocate
from .status import ANY_SOURCE, ANY_TAG, DEFAULT_MPI_CONFIG, MPIConfig, Status

__all__ = [
    "Comm", "mpi_init",
    "MatchEngine", "PostedRecv", "UnexpectedMsg",
    "Engine", "MPIRequest",
    "Win", "win_allocate",
    "ANY_SOURCE", "ANY_TAG", "DEFAULT_MPI_CONFIG", "MPIConfig", "Status",
]
