"""Communicator: the user-facing minimpi API and collectives.

Address-based point-to-point (buffers live in simulated memory, as with
the verbs layer underneath) plus numpy-typed collectives that stage
through a per-rank scratch heap.  Collectives use a reserved tag space
keyed by an epoch counter, so SPMD programs must call them in the same
order on every rank.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster import Cluster
from ..sim.core import SimulationError
from .protocol import Engine, MPIRequest
from .status import ANY_SOURCE, ANY_TAG, DEFAULT_MPI_CONFIG, MPIConfig, Status

__all__ = ["Comm", "mpi_init"]

_COLL_TAG_BASE = 1 << 40
_REDUCE_OPS = {
    "sum": np.add,
    "min": np.minimum,
    "max": np.maximum,
    "prod": np.multiply,
}


class _Scratch:
    """Ring allocator for collective staging buffers."""

    def __init__(self, memory, size: int):
        self.base = memory.alloc(size, align=64)
        self.size = size
        self.cursor = 0

    def take(self, nbytes: int) -> int:
        if nbytes > self.size // 2:
            raise SimulationError(
                f"collective payload {nbytes}B exceeds scratch capacity "
                f"{self.size // 2}B; raise MPIConfig.coll_scratch")
        if self.cursor + nbytes > self.size:
            self.cursor = 0
        addr = self.base + self.cursor
        self.cursor += (nbytes + 63) & ~63
        return addr


class Comm:
    """MPI_COMM_WORLD-like communicator for one rank."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self.rank = engine.rank
        self.size = engine.cluster.n
        self.env = engine.env
        self.memory = engine.memory
        self._scratch = _Scratch(engine.memory, engine.config.coll_scratch)
        self._epoch = 0

    # ------------------------------------------------------------- p2p
    def isend(self, addr: int, size: int, dst: int, tag: int = 0):
        """Non-blocking send (generator → MPIRequest)."""
        req = yield from self.engine.isend(addr, size, dst, tag)
        return req

    def irecv(self, addr: int, length: int, src: int = ANY_SOURCE,
              tag: int = ANY_TAG):
        """Non-blocking receive (generator → MPIRequest)."""
        req = yield from self.engine.irecv(addr, length, src, tag)
        return req

    def send(self, addr: int, size: int, dst: int, tag: int = 0):
        """Blocking send (generator)."""
        req = yield from self.engine.isend(addr, size, dst, tag)
        yield from self.engine.wait(req)

    def recv(self, addr: int, length: int, src: int = ANY_SOURCE,
             tag: int = ANY_TAG):
        """Blocking receive (generator → Status)."""
        req = yield from self.engine.irecv(addr, length, src, tag)
        yield from self.engine.wait(req)
        return req.status

    def sendrecv(self, saddr: int, ssize: int, dst: int, stag: int,
                 raddr: int, rlength: int, src: int = ANY_SOURCE,
                 rtag: int = ANY_TAG):
        """Simultaneous send+receive (generator → Status of the receive)."""
        rreq = yield from self.engine.irecv(raddr, rlength, src, rtag)
        sreq = yield from self.engine.isend(saddr, ssize, dst, stag)
        yield from self.engine.waitall([sreq, rreq])
        return rreq.status

    def wait(self, req: MPIRequest, timeout_ns: Optional[int] = None):
        ok = yield from self.engine.wait(req, timeout_ns)
        return ok

    def waitall(self, reqs: List[MPIRequest],
                timeout_ns: Optional[int] = None):
        ok = yield from self.engine.waitall(reqs, timeout_ns)
        return ok

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              timeout_ns: Optional[int] = None):
        st = yield from self.engine.probe(src, tag, timeout_ns)
        return st

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        st = yield from self.engine.iprobe(src, tag)
        return st

    def stats(self):
        """JSON-serializable engine snapshot for this rank."""
        return self.engine.stats()

    # ------------------------------------------------------------- staging
    def _send_bytes(self, dst: int, data: bytes, tag: int):
        """Stage + blocking-send a bytes payload (generator)."""
        addr = self._scratch.take(max(len(data), 1))
        self.memory.write(addr, data)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(data)))
        yield from self.send(addr, len(data), dst, tag)

    def _isend_bytes(self, dst: int, data: bytes, tag: int):
        addr = self._scratch.take(max(len(data), 1))
        self.memory.write(addr, data)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(data)))
        req = yield from self.isend(addr, len(data), dst, tag)
        return req

    def _recv_bytes(self, src: int, max_bytes: int, tag: int):
        """Blocking receive into scratch; returns the payload (generator)."""
        addr = self._scratch.take(max(max_bytes, 1))
        status = yield from self.recv(addr, max_bytes, src, tag)
        # owned copy: the scratch ring wraps and reuses this region
        return self.memory.read_bytes(addr, status.count)

    def _coll_tag(self, step: int) -> int:
        return _COLL_TAG_BASE + self._epoch * 4096 + step

    # ------------------------------------------------------------- collectives
    def barrier(self):
        """Dissemination barrier (generator)."""
        n = self.size
        self._epoch += 1
        if n == 1:
            return
        step = 0
        dist = 1
        while dist < n:
            dst = (self.rank + dist) % n
            src = (self.rank - dist) % n
            tag = self._coll_tag(step)
            sreq = yield from self._isend_bytes(dst, b"", tag)
            data = yield from self._recv_bytes(src, 8, tag)
            yield from self.engine.wait(sreq)
            dist <<= 1
            step += 1
        self.engine.counters.add("mpi.barriers")

    def bcast(self, array: np.ndarray, root: int = 0):
        """Binomial-tree broadcast; returns the array (generator)."""
        n = self.size
        self._epoch += 1
        if n == 1:
            return array.copy()
        vrank = (self.rank - root) % n
        data = array.tobytes() if vrank == 0 else None
        mask = 1
        # find the sender for this vrank
        while mask < n:
            if vrank & mask:
                src = (self.rank - mask) % n
                raw = yield from self._recv_bytes(src, array.nbytes,
                                                  self._coll_tag(0))
                data = raw
                break
            mask <<= 1
        if vrank == 0:
            mask = 1
            while mask < n:
                mask <<= 1
            mask >>= 1
        else:
            mask >>= 1
        while mask:
            if vrank + mask < n and not (vrank & (mask - 1)):
                dst = (self.rank + mask) % n
                yield from self._send_bytes(dst, data, self._coll_tag(0))
            mask >>= 1
        out = np.frombuffer(data, dtype=array.dtype).reshape(array.shape)
        return out.copy()

    def allreduce(self, array: np.ndarray, op: str = "sum"):
        """Recursive-doubling allreduce (generator → reduced array)."""
        if op not in _REDUCE_OPS:
            raise SimulationError(f"unknown reduce op {op!r}")
        n = self.size
        self._epoch += 1
        if n == 1:
            return array.copy()
        data = np.array(array, copy=True)
        fn = _REDUCE_OPS[op]
        pof2 = 1
        while pof2 * 2 <= n:
            pof2 *= 2
        rem = n - pof2
        rank = self.rank
        step = 0
        if rank >= pof2:
            yield from self._send_bytes(rank - pof2, data.tobytes(),
                                        self._coll_tag(step))
        elif rank < rem:
            raw = yield from self._recv_bytes(rank + pof2, data.nbytes,
                                              self._coll_tag(step))
            data = fn(data, np.frombuffer(raw, dtype=data.dtype).reshape(
                data.shape))
            yield self.env.timeout(self.memory.memcpy_cost_ns(data.nbytes))
        step += 1
        if rank < pof2:
            dist = 1
            while dist < pof2:
                partner = rank ^ dist
                tag = self._coll_tag(step)
                sreq = yield from self._isend_bytes(partner, data.tobytes(),
                                                    tag)
                raw = yield from self._recv_bytes(partner, data.nbytes, tag)
                yield from self.engine.wait(sreq)
                data = fn(data, np.frombuffer(raw, dtype=data.dtype).reshape(
                    data.shape))
                yield self.env.timeout(
                    self.memory.memcpy_cost_ns(data.nbytes))
                dist <<= 1
                step += 1
        else:
            step += pof2.bit_length() - 1
        if rank < rem:
            yield from self._send_bytes(rank + pof2, data.tobytes(),
                                        self._coll_tag(step))
        elif rank >= pof2:
            raw = yield from self._recv_bytes(rank - pof2, data.nbytes,
                                              self._coll_tag(step))
            data = np.frombuffer(raw, dtype=data.dtype).reshape(
                data.shape).copy()
        self.engine.counters.add("mpi.allreduces")
        return data

    def reduce(self, array: np.ndarray, op: str = "sum", root: int = 0):
        """Allreduce-based reduce (generator; non-roots get None)."""
        out = yield from self.allreduce(array, op)
        return out if self.rank == root else None

    def allgather(self, data: bytes):
        """Ring allgather of equal-size blobs (generator → list by rank)."""
        n = self.size
        self._epoch += 1
        out: List[bytes] = [b""] * n
        out[self.rank] = bytes(data)
        if n == 1:
            return out
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        for step in range(n - 1):
            send_idx = (self.rank - step) % n
            recv_idx = (self.rank - step - 1) % n
            tag = self._coll_tag(step)
            sreq = yield from self._isend_bytes(right, out[send_idx], tag)
            out[recv_idx] = yield from self._recv_bytes(
                left, max(len(data), 1), tag)
            yield from self.engine.wait(sreq)
        return out

    def gather(self, data: bytes, root: int = 0):
        """Linear gather of equal-size blobs to ``root`` (generator).

        Returns the list by rank at the root, None elsewhere.
        """
        n = self.size
        self._epoch += 1
        tag = self._coll_tag(0)
        if self.rank == root:
            out: List[bytes] = [b""] * n
            out[root] = bytes(data)
            for _ in range(n - 1):
                addr = self._scratch.take(max(len(data), 1) + 8)
                status = yield from self.recv(addr, max(len(data), 1),
                                              tag=tag)
                out[status.source] = self.memory.read_bytes(addr,
                                                            status.count)
            return out
        yield from self._send_bytes(root, data, tag)
        return None

    def scatter(self, blobs: Optional[List[bytes]], root: int = 0):
        """Linear scatter from ``root`` (generator → this rank's blob)."""
        n = self.size
        self._epoch += 1
        tag = self._coll_tag(0)
        if self.rank == root:
            if blobs is None or len(blobs) != n:
                raise SimulationError("root must scatter one blob per rank")
            reqs = []
            for dst in range(n):
                if dst == root:
                    continue
                req = yield from self._isend_bytes(dst, blobs[dst], tag)
                reqs.append(req)
            yield from self.engine.waitall(reqs)
            return bytes(blobs[root])
        addr = self._scratch.take(1 << 16)
        status = yield from self.recv(addr, 1 << 16, src=root, tag=tag)
        return self.memory.read_bytes(addr, status.count)

    def alltoall(self, blobs: List[bytes]):
        """Pairwise-exchange alltoallv (generator → list by source rank).

        Blob sizes may differ; an 8-byte count exchange precedes each
        payload exchange, as in alltoallv implementations.
        """
        n = self.size
        self._epoch += 1
        if len(blobs) != n:
            raise SimulationError("alltoall needs one blob per rank")
        out: List[bytes] = [b""] * n
        out[self.rank] = bytes(blobs[self.rank])
        for step in range(1, n):
            dst = (self.rank + step) % n
            src = (self.rank - step) % n
            tag = self._coll_tag(2 * step)
            hdr = len(blobs[dst]).to_bytes(8, "little")
            sreq = yield from self._isend_bytes(dst, hdr, tag)
            raw = yield from self._recv_bytes(src, 8, tag)
            incoming = int.from_bytes(raw, "little")
            yield from self.engine.wait(sreq)
            tag = self._coll_tag(2 * step + 1)
            sreq = yield from self._isend_bytes(dst, blobs[dst], tag)
            out[src] = yield from self._recv_bytes(src, max(incoming, 1),
                                                   tag)
            yield from self.engine.wait(sreq)
        return out


def mpi_init(cluster: Cluster,
             config: Optional[MPIConfig] = None) -> List[Comm]:
    """Create one communicator per rank over a full QP mesh."""
    cfg = config or DEFAULT_MPI_CONFIG
    engines = [Engine(cluster[r], cluster, cfg) for r in range(cluster.n)]
    for e in engines:
        e._alloc_bounce()
    for a in range(cluster.n):
        for b in range(a + 1, cluster.n):
            ea, eb = engines[a], engines[b]
            depth = cfg.eager_credits + cfg.prepost + 64
            qp_ab = ea.context.create_qp(ea.pd, ea.send_cq, ea.recv_cq,
                                         max_send_wr=depth,
                                         max_recv_wr=cfg.prepost + 8)
            qp_ba = eb.context.create_qp(eb.pd, eb.send_cq, eb.recv_cq,
                                         max_send_wr=depth,
                                         max_recv_wr=cfg.prepost + 8)
            qp_ab.connect(qp_ba)
            ea._wire_peer(b, qp_ab)
            eb._wire_peer(a, qp_ba)
    return [Comm(e) for e in engines]
