"""MPI-3-style one-sided windows (the RMA comparator in R1).

``Win`` exposes a registered region on every rank; ``put``/``get``/
``accumulate`` map to RDMA write/read/fetch-add, and active-target
synchronisation is via ``fence`` (drain local operations + barrier).
This is the "MPI RMA" baseline the paper compares PWC against: the data
path is the same hardware primitive, but completion/synchronisation
semantics force epoch-wide fences instead of per-operation completions.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..sim.core import SimulationError
from ..verbs.enums import Access, Opcode
from ..verbs.qp import SendWR
from .comm import Comm

__all__ = ["Win", "win_allocate"]


class Win:
    """One rank's handle on a window collectively created over a comm."""

    def __init__(self, comm: Comm, addr: int, size: int):
        self.comm = comm
        self.engine = comm.engine
        self.addr = addr
        self.size = size
        self.env = comm.env
        mr = self.engine.context.reg_mr_sync(self.engine.pd, addr, size,
                                             Access.ALL)
        self.rkey = mr.rkey
        #: (addr, rkey) of every rank's window, filled by win_allocate
        self.remote: Dict[int, tuple] = {comm.rank: (addr, self.rkey)}
        self._pending = 0
        self._wr_seq = itertools.count(1)

    # ------------------------------------------------------------- epochs
    def fence(self):
        """Complete all outstanding RMA ops, then barrier (generator)."""
        yield from self.engine._wait_until(lambda: self._pending == 0)
        yield from self.comm.barrier()
        self.engine.counters.add("mpi.rma_fences")

    def flush(self):
        """Complete outstanding local operations only (generator)."""
        yield from self.engine._wait_until(lambda: self._pending == 0)

    # ------------------------------------------------------------- data ops
    def _target(self, rank: int, offset: int, size: int) -> tuple:
        if rank not in self.remote:
            raise SimulationError(f"window has no rank {rank}")
        raddr, rkey = self.remote[rank]
        if offset < 0 or offset + size > self.size:
            raise SimulationError(
                f"RMA access [{offset}, {offset + size}) outside "
                f"{self.size}-byte window")
        return raddr + offset, rkey

    def _post(self, rank: int, wr: SendWR, mr=None):
        if rank == self.comm.rank:
            raise SimulationError(
                "loopback window access: use local memory directly")
        self._pending += 1

        def done():
            self._pending -= 1
            if mr is not None:
                self.engine.rcache.release_async(mr)

        def error():
            # a failed WR still settles the epoch accounting and unpins,
            # otherwise fence/flush would wait forever on a lossy fabric
            self.engine.counters.add("mpi.rma_failures")
            done()

        wr.wr_id = next(self.engine._wr_seq)
        self.engine._ops[wr.wr_id] = done
        self.engine._op_errors[wr.wr_id] = error
        ch = self.engine._peer(rank)
        yield from ch.qp.post_send_timed(wr)

    def put(self, local_addr: int, size: int, rank: int, offset: int = 0):
        """One-sided put into ``rank``'s window (generator)."""
        raddr, rkey = self._target(rank, offset, size)
        mr = yield from self.engine.rcache.acquire(local_addr, size)
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_addr=local_addr,
                    length=size, remote_addr=raddr, rkey=rkey)
        yield from self._post(rank, wr, mr)
        self.engine.counters.add("mpi.rma_puts")

    def get(self, local_addr: int, size: int, rank: int, offset: int = 0):
        """One-sided get from ``rank``'s window (generator)."""
        raddr, rkey = self._target(rank, offset, size)
        mr = yield from self.engine.rcache.acquire(local_addr, size)
        wr = SendWR(opcode=Opcode.RDMA_READ, local_addr=local_addr,
                    length=size, remote_addr=raddr, rkey=rkey)
        yield from self._post(rank, wr, mr)
        self.engine.counters.add("mpi.rma_gets")

    def fetch_add(self, local_addr: int, rank: int, offset: int,
                  operand: int):
        """Remote atomic fetch-and-add on an 8-byte word (generator)."""
        raddr, rkey = self._target(rank, offset, 8)
        mr = yield from self.engine.rcache.acquire(local_addr, 8)
        wr = SendWR(opcode=Opcode.ATOMIC_FETCH_ADD, local_addr=local_addr,
                    remote_addr=raddr, rkey=rkey, compare_add=operand)
        yield from self._post(rank, wr, mr)
        self.engine.counters.add("mpi.rma_atomics")


def win_allocate(comms: List[Comm], size: int) -> List[Win]:
    """Collectively create a window of ``size`` bytes on every rank.

    Runs at t=0 (window creation cost is not part of measured loops); the
    (addr, rkey) exchange models MPI_Win_allocate's internal allgather.
    """
    wins = []
    for comm in comms:
        addr = comm.memory.alloc(size, align=64)
        wins.append(Win(comm, addr, size))
    for w in wins:
        for other in wins:
            w.remote[other.comm.rank] = (other.addr, other.rkey)
    return wins
