"""Tag matching: posted-receive queue and unexpected-message queue.

MPI matching semantics: a receive (src, tag) — either may be a wildcard —
matches the earliest arrival from a matching source in arrival order; a
posted receive is consumed by the earliest matching arrival.  This module
is pure data structure (no simulation time); the protocol engine charges
the host costs around it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from .status import ANY_SOURCE, ANY_TAG

__all__ = ["PostedRecv", "UnexpectedMsg", "MatchEngine"]


@dataclass
class PostedRecv:
    """An irecv waiting for a message."""

    request: Any  # MPIRequest
    src: int
    tag: int
    addr: int
    length: int

    def matches(self, src: int, tag: int) -> bool:
        return ((self.src == ANY_SOURCE or self.src == src)
                and (self.tag == ANY_TAG or self.tag == tag))


@dataclass
class UnexpectedMsg:
    """An arrival with no matching posted receive (yet)."""

    src: int
    tag: int
    #: eager payload (bytes) or None for a rendezvous RTS
    payload: Optional[bytes]
    #: RTS fields (set when payload is None)
    remote_addr: int = 0
    remote_key: int = 0
    size: int = 0
    sreq: int = 0

    @property
    def is_rts(self) -> bool:
        return self.payload is None


class MatchEngine:
    """Posted + unexpected queues for one rank."""

    def __init__(self):
        self.posted: List[PostedRecv] = []
        self.unexpected: List[UnexpectedMsg] = []
        self.max_unexpected = 0

    # -- arrivals ---------------------------------------------------------
    def match_arrival(self, src: int, tag: int) -> Optional[PostedRecv]:
        """Find+remove the earliest posted receive matching an arrival."""
        for i, p in enumerate(self.posted):
            if p.matches(src, tag):
                del self.posted[i]
                return p
        return None

    def add_unexpected(self, msg: UnexpectedMsg) -> None:
        self.unexpected.append(msg)
        self.max_unexpected = max(self.max_unexpected, len(self.unexpected))

    # -- receives -----------------------------------------------------------
    def match_posted(self, src: int, tag: int) -> Optional[UnexpectedMsg]:
        """Find+remove the earliest unexpected message matching a receive."""
        for i, m in enumerate(self.unexpected):
            if ((src == ANY_SOURCE or m.src == src)
                    and (tag == ANY_TAG or m.tag == tag)):
                del self.unexpected[i]
                return m
        return None

    def peek_unexpected(self, src: int, tag: int) -> Optional[UnexpectedMsg]:
        """Probe: earliest matching unexpected message, not removed."""
        for m in self.unexpected:
            if ((src == ANY_SOURCE or m.src == src)
                    and (tag == ANY_TAG or m.tag == tag)):
                return m
        return None

    def post(self, recv: PostedRecv) -> None:
        self.posted.append(recv)
