"""MPI-like status, wildcards and configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "MPIConfig", "DEFAULT_MPI_CONFIG"]

#: wildcard source / tag
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Status:
    """Completion status of a receive (or probe)."""

    source: int = -1
    tag: int = -1
    count: int = 0


@dataclass(frozen=True)
class MPIConfig:
    """Tunables of the minimpi library (mirrors typical MPI CVARs)."""

    #: messages <= this go eager (copied through bounce buffers)
    eager_threshold: int = 8192
    #: per-peer send bounce slots (eager flow-control window)
    eager_credits: int = 32
    #: per-peer preposted receive bounce buffers
    prepost: int = 64
    #: host cost of one progress pass (ns)
    progress_poll_ns: int = 60
    #: idle backoff between polls when blocking (ns)
    wait_backoff_ns: int = 100
    #: registration cache for rendezvous buffers
    rcache_enabled: bool = True
    rcache_capacity: int = 128
    #: pinned-bytes ceiling for the rendezvous rcache (0 = unlimited)
    rcache_max_pinned_bytes: int = 0
    #: per-call software-stack overhead (ns): request allocation, protocol
    #: selection, matching-engine bookkeeping.  Charged at isend/irecv
    #: entry and per inbound protocol message.  Production MPI libraries
    #: measure 100-300 ns here on top of raw verbs; Photon's thin
    #: completion-oriented layer is the paper's alternative to exactly
    #: this cost.  Set to 0 for an idealised (overhead-free) baseline.
    sw_overhead_ns: int = 120
    #: collective scratch heap per rank (bytes)
    coll_scratch: int = 8 * 1024 * 1024
    #: extra attempts for a control message / rendezvous fetch the fabric
    #: failed before the owning request is completed with an error
    max_op_retries: int = 3

    def replace(self, **kw) -> "MPIConfig":
        return replace(self, **kw)

    def validate(self) -> None:
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be >= 0")
        if self.eager_credits < 1 or self.prepost < 2:
            raise ValueError("eager_credits >= 1 and prepost >= 2 required")
        if self.max_op_retries < 0:
            raise ValueError("max_op_retries must be >= 0")


DEFAULT_MPI_CONFIG = MPIConfig()
