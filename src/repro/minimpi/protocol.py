"""The minimpi protocol engine: eager + rendezvous over verbs.

This is the two-sided comparator the paper evaluates Photon against.  It
implements the standard MPI transport design over RC queue pairs:

- **Eager** (size <= threshold): the payload is *copied* into a registered
  send bounce buffer behind a 48-byte header and SENT; it lands in one of
  the receiver's preposted bounce buffers, where the progress engine
  matches it against posted receives and *copies* it out to the user
  buffer (or to an unexpected-queue allocation).  Two copies that Photon's
  PWC path does not pay.
- **Rendezvous** (size > threshold): the sender registers the user buffer
  (registration cache) and SENDs an RTS carrying (addr, rkey, size); the
  receiver matches it, registers its landing buffer, RDMA-READs the
  payload directly, and SENDs back a FIN that completes the sender's
  request.  One and a half round trips of control traffic that Photon's
  pre-exposed-buffer put does not pay.

Progress is polling and runs inside blocking calls, exactly like the
Photon engine, so the two libraries share cost accounting conventions.
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..cluster import Cluster, RankNode
from ..photon.rcache import RegistrationCache
from ..sim.core import Environment, SimulationError
from ..verbs.enums import Access, Opcode, QPState
from ..verbs.qp import QueuePair, RecvWR, SendWR
from .matching import MatchEngine, PostedRecv, UnexpectedMsg
from .status import ANY_SOURCE, ANY_TAG, MPIConfig, Status

__all__ = ["Engine", "MPIRequest", "HDR"]

# kind(q) tag(q) size(q) sreq(q) addr(q) rkey(q)
HDR = struct.Struct("<qqqqqq")
KIND_EAGER = 1
KIND_RTS = 2
KIND_FIN = 3


class MPIRequest:
    """Handle for a non-blocking operation."""

    __slots__ = ("rid", "kind", "peer", "done", "status", "t_posted",
                 "t_completed", "error", "on_settle", "span")
    _ids = itertools.count(1)

    def __init__(self, kind: str, now: int):
        self.rid = next(MPIRequest._ids)
        self.kind = kind
        #: destination (sends) or expected source (receives); -1 wildcard
        self.peer = -1
        self.done = False
        self.status = Status()
        self.t_posted = now
        self.t_completed = -1
        #: None, or the error the transport gave up with ("retry_exceeded")
        self.error: Optional[str] = None
        #: fired exactly once when the request turns terminal — resource
        #: cleanup hook (rcache release)
        self.on_settle: Optional[Callable[[], None]] = None
        #: open op-latency span (None when span recording is disabled)
        self.span = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def _settle(self) -> None:
        hook, self.on_settle = self.on_settle, None
        if hook is not None:
            hook()

    def complete(self, now: int) -> None:
        if self.done:
            raise SimulationError(f"request {self.rid} completed twice")
        self.done = True
        self.t_completed = now
        if self.span is not None:
            self.span.end(now)
        self._settle()

    def fail(self, now: int, error: str = "retry_exceeded") -> None:
        """Settle the request with an error so waits unblock."""
        if self.done:
            return
        self.error = error
        self.done = True
        self.t_completed = now
        if self.span is not None:
            self.span.end(now, status=error)
        self._settle()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("failed" if self.failed
                 else "done" if self.done else "pending")
        return f"<MPIRequest {self.rid} {self.kind} {state}>"


@dataclass
class _PeerChannel:
    """Per-peer transport state."""

    qp: QueuePair
    #: free send-bounce slot addresses
    send_slots: Deque[int] = field(default_factory=deque)
    #: recv bounce slot address by verbs wr_id
    recv_slots: Dict[int, int] = field(default_factory=dict)


class Engine:
    """Per-rank minimpi transport engine."""

    def __init__(self, node: RankNode, cluster: Cluster, config: MPIConfig):
        config.validate()
        self.node = node
        self.cluster = cluster
        self.config = config
        self.rank = node.rank
        self.env: Environment = cluster.env
        self.context = node.context
        self.memory = node.memory
        # this rank's counter scope: writes mirror into cluster.counters
        self.counters = cluster.scope(node.rank)
        self.pd = self.context.alloc_pd()
        depth = cluster.n * (config.eager_credits + config.prepost) * 2 + 256
        self.send_cq = self.context.create_cq(capacity=depth)
        self.recv_cq = self.context.create_cq(capacity=depth)
        self.rcache = RegistrationCache(
            self.context, self.pd, capacity=config.rcache_capacity,
            enabled=config.rcache_enabled,
            max_pinned_bytes=config.rcache_max_pinned_bytes)
        self.matcher = MatchEngine()
        self.peers: Dict[int, _PeerChannel] = {}
        self.live_requests: Dict[int, MPIRequest] = {}
        self._ops: Dict[int, Callable] = {}
        #: error handlers by wr_id (retry closures, request failure)
        self._op_errors: Dict[int, Callable] = {}
        self._wr_seq = itertools.count(1)
        self.slot_size = HDR.size + config.eager_threshold
        self._bounce_mr = None
        #: failure-detector handle (None unless attach_health was called)
        self.health = None
        # deferred self-messages (no wire)
        self._self_queue: Deque[Tuple[int, bytes]] = deque()

    # ------------------------------------------------------------- health
    def attach_health(self, monitor) -> None:
        """Consume a failure detector: pending requests against a peer
        declared dead settle immediately with ``error="peer_dead"``
        instead of burning their full resend budget, and new requests
        toward a dead peer fail fast at post time."""
        self.health = monitor
        monitor.on_dead(self._fail_dead_peer)

    def _fail_dead_peer(self, rank: int) -> None:
        now = self.env.now
        failed = 0
        for req in list(self.live_requests.values()):
            if req.done or req.peer != rank:
                continue
            req.fail(now, error="peer_dead")
            failed += 1
        if failed:
            self.counters.add("mpi.dead_peer_fails", failed)
        # flush pending WRs so their SQ slots don't leak against a peer
        # that will never ack (reliable fabrics never error them)
        ch = self.peers.get(rank)
        if ch is not None and ch.qp.state is QPState.READY:
            ch.qp.teardown()

    # ------------------------------------------------------------- bootstrap
    def _alloc_bounce(self) -> None:
        n_peers = self.cluster.n - 1
        c = self.config
        total = n_peers * self.slot_size * (c.eager_credits + c.prepost)
        base = self.memory.alloc(max(total, 8), align=64)
        self._bounce_mr = self.context.reg_mr_sync(
            self.pd, base, max(total, 8), Access.ALL)
        self._bounce_cursor = base

    def _wire_peer(self, peer_rank: int, qp: QueuePair) -> None:
        c = self.config
        ch = _PeerChannel(qp=qp)
        for _ in range(c.eager_credits):
            ch.send_slots.append(self._bounce_cursor)
            self._bounce_cursor += self.slot_size
        for _ in range(c.prepost):
            wr_id = next(self._wr_seq)
            addr = self._bounce_cursor
            self._bounce_cursor += self.slot_size
            ch.recv_slots[wr_id] = addr
            qp.post_recv(RecvWR(wr_id=wr_id, addr=addr,
                                length=self.slot_size))
        self.peers[peer_rank] = ch

    def _peer(self, rank: int) -> _PeerChannel:
        ch = self.peers.get(rank)
        if ch is None:
            raise SimulationError(f"rank {self.rank}: unknown peer {rank}")
        return ch

    # ------------------------------------------------------------- send side
    def isend(self, addr: int, size: int, dst: int, tag: int):
        """Non-blocking send from simulated memory (generator → request)."""
        if size < 0 or tag < 0:
            raise SimulationError("isend needs size >= 0 and tag >= 0")
        req = MPIRequest("send", self.env.now)
        req.peer = dst
        name = ("mpi.eager_send" if size <= self.config.eager_threshold
                else "mpi.rndv_send")
        req.span = self.counters.span(name, self.env.now, peer=dst,
                                      nbytes=size)
        self.live_requests[req.rid] = req
        self.counters.add("mpi.isends")
        if (self.health is not None and dst != self.rank
                and self.health.is_dead(dst)):
            # fail fast: don't burn the resend budget on a confirmed corpse
            self.counters.add("mpi.dead_peer_fails")
            req.fail(self.env.now, error="peer_dead")
            return req
        yield self.env.timeout(self.config.sw_overhead_ns)
        if dst == self.rank:
            # owned snapshot: a self-send may sit in the unexpected queue
            # while the source buffer is reused
            payload = self.memory.read_bytes(addr, size)
            yield self.env.timeout(self.memory.memcpy_cost_ns(size))
            yield from self._deliver_local(self.rank, tag, payload)
            req.complete(self.env.now)
            return req
        if size <= self.config.eager_threshold:
            yield from self._send_eager(req, addr, size, dst, tag)
        else:
            yield from self._send_rts(req, addr, size, dst, tag)
        return req

    def _acquire_slot(self, ch: _PeerChannel):
        while not ch.send_slots:
            self.counters.add("mpi.eager_stalls")
            yield from self._progress_once()
            yield self.env.timeout(self.config.wait_backoff_ns)
        return ch.send_slots.popleft()

    def _send_ctrl(self, ch: _PeerChannel, slot: int, raw: bytes,
                   on_ack: Optional[Callable],
                   on_fail: Optional[Callable] = None,
                   attempt: int = 0) -> "generator":
        """Stage ``raw`` into ``slot`` and SEND it (generator).

        A SEND the fabric gave up on is replayed (the QP is re-armed by
        the progress engine first) up to ``max_op_retries`` extra times;
        after that the slot is returned and ``on_fail`` fires.
        """
        self.memory.write(slot, raw)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(raw)))
        wr_id = next(self._wr_seq)

        def done():
            ch.send_slots.append(slot)
            if on_ack is not None:
                on_ack()

        def error():
            if attempt < self.config.max_op_retries:
                self.counters.add("mpi.ctrl_resends")
                self.env.process(
                    self._resend_ctrl(ch, slot, raw, on_ack, on_fail,
                                      attempt + 1),
                    name="mpi:ctrl-resend")
            else:
                ch.send_slots.append(slot)
                self.counters.add("mpi.ctrl_failures")
                if on_fail is not None:
                    on_fail()

        self._ops[wr_id] = done
        self._op_errors[wr_id] = error
        wr = SendWR(opcode=Opcode.SEND, wr_id=wr_id, local_addr=slot,
                    length=len(raw))
        yield from ch.qp.post_send_timed(wr)

    def _resend_ctrl(self, ch: _PeerChannel, slot: int, raw: bytes,
                     on_ack: Optional[Callable], on_fail: Optional[Callable],
                     attempt: int):
        yield self.env.timeout(self.config.sw_overhead_ns)
        yield from self._send_ctrl(ch, slot, raw, on_ack, on_fail, attempt)

    def _send_eager(self, req: MPIRequest, addr: int, size: int, dst: int,
                    tag: int):
        ch = self._peer(dst)
        slot = yield from self._acquire_slot(ch)
        payload = self.memory.read(addr, size) if size else b""
        # join (not +) accepts the zero-copy view and snapshots it exactly
        # once, into the owned bytes the resend closures hold on to
        raw = b"".join((HDR.pack(KIND_EAGER, tag, size, req.rid, 0, 0),
                        payload))
        # eager completes locally once the bounce copy is on the wire
        rid = req.rid

        def on_ack():
            self.live_requests[rid].complete(self.env.now)

        def on_fail():
            self.counters.add("mpi.send_failures")
            failed = self.live_requests.get(rid)
            if failed is not None:
                failed.fail(self.env.now)

        yield from self._send_ctrl(ch, slot, raw, on_ack, on_fail)
        self.counters.add("mpi.eager_sends")

    def _send_rts(self, req: MPIRequest, addr: int, size: int, dst: int,
                  tag: int):
        ch = self._peer(dst)
        mr = yield from self.rcache.acquire(addr, size)
        slot = yield from self._acquire_slot(ch)
        raw = HDR.pack(KIND_RTS, tag, size, req.rid, addr, mr.rkey)
        rid = req.rid
        # pinned until the receiver fetched + FINed (or the send failed)
        req.on_settle = lambda: self.rcache.release_async(mr)

        def on_fail():
            # the advertisement never arrived: no FIN will ever come back
            self.counters.add("mpi.send_failures")
            failed = self.live_requests.get(rid)
            if failed is not None:
                failed.fail(self.env.now)

        yield from self._send_ctrl(ch, slot, raw, None, on_fail)
        self.counters.add("mpi.rndv_sends")
        # request completes when the FIN arrives

    def _send_fin(self, dst: int, sreq: int):
        ch = self._peer(dst)
        slot = yield from self._acquire_slot(ch)
        raw = HDR.pack(KIND_FIN, 0, 0, sreq, 0, 0)

        def on_fail():
            # the sender's request will settle via its own deadline/teardown;
            # all we can do here is record the loss
            self.counters.add("mpi.fin_failures")

        yield from self._send_ctrl(ch, slot, raw, None, on_fail)

    # ------------------------------------------------------------- recv side
    def irecv(self, addr: int, length: int, src: int, tag: int):
        """Non-blocking receive into simulated memory (generator → request)."""
        req = MPIRequest("recv", self.env.now)
        req.peer = src
        req.span = self.counters.span("mpi.recv", self.env.now,
                                      peer=src, nbytes=length)
        self.live_requests[req.rid] = req
        self.counters.add("mpi.irecvs")
        if (self.health is not None and src >= 0 and src != self.rank
                and self.health.is_dead(src)):
            self.counters.add("mpi.dead_peer_fails")
            req.fail(self.env.now, error="peer_dead")
            return req
        yield self.env.timeout(self.config.sw_overhead_ns)
        # check the unexpected queue first (standard MPI behaviour)
        msg = self.matcher.match_posted(src, tag)
        if msg is not None:
            yield from self._satisfy_recv(req, addr, length, msg)
            return req
        self.matcher.post(PostedRecv(request=req, src=src, tag=tag,
                                     addr=addr, length=length))
        return req

    def _satisfy_recv(self, req: MPIRequest, addr: int, length: int,
                      msg: UnexpectedMsg):
        if msg.is_rts:
            posted = PostedRecv(request=req, src=msg.src, tag=msg.tag,
                                addr=addr, length=length)
            yield from self._fetch_rendezvous(posted, msg)
        else:
            if len(msg.payload) > length:
                raise SimulationError(
                    f"rank {self.rank}: eager message of {len(msg.payload)}B "
                    f"truncates {length}B receive (tag {msg.tag})")
            self.memory.write(addr, msg.payload)
            yield self.env.timeout(
                self.memory.memcpy_cost_ns(len(msg.payload)))
            req.status = Status(source=msg.src, tag=msg.tag,
                                count=len(msg.payload))
            req.complete(self.env.now)

    def _fetch_rendezvous(self, posted: PostedRecv, msg: UnexpectedMsg):
        """RGET: read the advertised buffer, then FIN the sender."""
        if msg.size > posted.length:
            raise SimulationError(
                f"rank {self.rank}: rendezvous message of {msg.size}B "
                f"truncates {posted.length}B receive")
        mr = yield from self.rcache.acquire(posted.addr, msg.size)
        req = posted.request
        src, tag, size, sreq = msg.src, msg.tag, msg.size, msg.sreq
        state = {"attempts": 0}

        def done():
            self.rcache.release_async(mr)
            req.status = Status(source=src, tag=tag, count=size)
            req.complete(self.env.now)
            self.env.process(self._send_fin(src, sreq), name="mpi:fin")

        def error():
            # RDMA reads are idempotent — repost the same fetch
            if state["attempts"] < self.config.max_op_retries:
                state["attempts"] += 1
                self.counters.add("mpi.fetch_retries")
                self.env.process(post_once(), name="mpi:refetch")
            else:
                self.rcache.release_async(mr)
                self.counters.add("mpi.recv_failures")
                req.status = Status(source=src, tag=tag, count=0)
                req.fail(self.env.now)

        def post_once():
            wr_id = next(self._wr_seq)
            self._ops[wr_id] = done
            self._op_errors[wr_id] = error
            ch = self._peer(src)
            wr = SendWR(opcode=Opcode.RDMA_READ, wr_id=wr_id,
                        local_addr=posted.addr, length=size,
                        remote_addr=msg.remote_addr, rkey=msg.remote_key)
            yield from ch.qp.post_send_timed(wr)

        yield from post_once()
        self.counters.add("mpi.rndv_fetches")

    def _deliver_local(self, src: int, tag: int, payload: bytes):
        """Self-send: goes straight through matching."""
        posted = self.matcher.match_arrival(src, tag)
        if posted is None:
            self.matcher.add_unexpected(
                UnexpectedMsg(src=src, tag=tag, payload=payload))
            return
        if len(payload) > posted.length:
            raise SimulationError("self-send truncates receive")
        self.memory.write(posted.addr, payload)
        yield self.env.timeout(self.memory.memcpy_cost_ns(len(payload)))
        posted.request.status = Status(source=src, tag=tag,
                                       count=len(payload))
        posted.request.complete(self.env.now)

    # ------------------------------------------------------------- progress
    def _reconnect(self, rank: int) -> None:
        ch = self.peers.get(rank)
        if ch is not None and ch.qp.state is QPState.ERROR:
            ch.qp.reset_and_reconnect()
            self.counters.add("mpi.qp_reconnects")

    def _progress_once(self):
        env = self.env
        nic = self.cluster.params.nic
        yield env.timeout(self.config.progress_poll_ns)
        for wc in self.send_cq.poll(max_entries=32):
            yield env.timeout(nic.cqe_poll_ns)
            cb = self._ops.pop(wc.wr_id, None)
            ecb = self._op_errors.pop(wc.wr_id, None)
            if not wc.ok:
                self.counters.add("mpi.wr_errors")
                self._reconnect(wc.src_rank)
                if ecb is not None:
                    ecb()
                continue
            if cb is not None:
                cb()
        for wc in self.recv_cq.poll(max_entries=32):
            yield env.timeout(nic.cqe_poll_ns)
            if not wc.ok:
                # flushed bounce receive: reclaim the slot and repost once
                # the QP is re-armed
                self.counters.add("mpi.recv_flushes")
                ch = self.peers.get(wc.src_rank)
                slot = (ch.recv_slots.pop(wc.wr_id, None)
                        if ch is not None else None)
                self._reconnect(wc.src_rank)
                if (ch is not None and slot is not None
                        and ch.qp.state is QPState.READY):
                    new_id = next(self._wr_seq)
                    ch.recv_slots[new_id] = slot
                    ch.qp.post_recv(RecvWR(wr_id=new_id, addr=slot,
                                           length=self.slot_size))
                continue
            yield from self._on_recv(wc)
        self.counters.add("mpi.progress_passes")

    def _on_recv(self, wc):
        yield self.env.timeout(self.config.sw_overhead_ns)
        ch = self._peer(wc.src_rank)
        slot = ch.recv_slots.pop(wc.wr_id)
        raw = self.memory.read(slot, wc.byte_len)
        kind, tag, size, sreq, raddr, rkey = HDR.unpack_from(raw)
        if kind == KIND_EAGER:
            payload = raw[HDR.size:HDR.size + size]
            posted = self.matcher.match_arrival(wc.src_rank, tag)
            if posted is None:
                # copy out of the bounce so it can be reposted
                yield self.env.timeout(self.memory.memcpy_cost_ns(size))
                self.matcher.add_unexpected(UnexpectedMsg(
                    src=wc.src_rank, tag=tag, payload=bytes(payload)))
                self.counters.add("mpi.unexpected")
            else:
                if size > posted.length:
                    raise SimulationError(
                        f"rank {self.rank}: eager message of {size}B "
                        f"truncates {posted.length}B receive (tag {tag})")
                self.memory.write(posted.addr, payload)
                yield self.env.timeout(self.memory.memcpy_cost_ns(size))
                posted.request.status = Status(source=wc.src_rank, tag=tag,
                                               count=size)
                posted.request.complete(self.env.now)
        elif kind == KIND_RTS:
            posted = self.matcher.match_arrival(wc.src_rank, tag)
            msg = UnexpectedMsg(src=wc.src_rank, tag=tag, payload=None,
                                remote_addr=raddr, remote_key=rkey,
                                size=size, sreq=sreq)
            if posted is None:
                self.matcher.add_unexpected(msg)
                self.counters.add("mpi.unexpected_rts")
            else:
                yield from self._fetch_rendezvous(posted, msg)
        elif kind == KIND_FIN:
            sender_req = self.live_requests.get(sreq)
            if sender_req is not None and not sender_req.done:
                sender_req.complete(self.env.now)
        else:
            raise SimulationError(f"bad wire kind {kind}")
        # repost the bounce; the QP may have errored while this receive
        # was being processed (the handler above yields sim time, and a
        # concurrent send failure flips the QP to ERROR) — re-arm it
        # first, as the flushed-receive path does
        self._reconnect(wc.src_rank)
        new_id = next(self._wr_seq)
        ch.recv_slots[new_id] = slot
        ch.qp.post_recv(RecvWR(wr_id=new_id, addr=slot,
                               length=self.slot_size))

    # ------------------------------------------------------------- telemetry
    def stats(self) -> Dict[str, object]:
        """JSON-serializable engine snapshot (mirrors Endpoint.stats())."""
        return {
            "rank": self.rank,
            "live_requests": len(self.live_requests),
            "pending_requests": sum(1 for r in self.live_requests.values()
                                    if not r.done),
            "posted_recvs": len(self.matcher.posted),
            "unexpected_queued": len(self.matcher.unexpected),
            "unexpected_peak": self.matcher.max_unexpected,
            "send_slots_free": {
                str(r): len(ch.send_slots) for r, ch in self.peers.items()},
            "rcache": self.rcache.occupancy(),
        }

    # ------------------------------------------------------------- waits
    def _wait_until(self, predicate: Callable[[], bool],
                    timeout_ns: Optional[int] = None):
        deadline = None if timeout_ns is None else self.env.now + timeout_ns
        while not predicate():
            if deadline is not None and self.env.now >= deadline:
                return False
            yield from self._progress_once()
            if not predicate():
                yield self.env.timeout(self.config.wait_backoff_ns)
        return True

    def wait(self, req: MPIRequest, timeout_ns: Optional[int] = None):
        """Block until the request completes (generator → bool)."""
        ok = yield from self._wait_until(lambda: req.done, timeout_ns)
        if ok:
            self.live_requests.pop(req.rid, None)
        return ok

    def waitall(self, reqs: List[MPIRequest],
                timeout_ns: Optional[int] = None):
        ok = yield from self._wait_until(
            lambda: all(r.done for r in reqs), timeout_ns)
        if ok:
            for r in reqs:
                self.live_requests.pop(r.rid, None)
        return ok

    def iprobe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Progress once; returns a Status if a matching message is queued
        (generator)."""
        yield from self._progress_once()
        msg = self.matcher.peek_unexpected(src, tag)
        if msg is None:
            return None
        count = msg.size if msg.is_rts else len(msg.payload)
        return Status(source=msg.src, tag=msg.tag, count=count)

    def probe(self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
              timeout_ns: Optional[int] = None):
        """Block until a matching message can be received (generator)."""
        ok = yield from self._wait_until(
            lambda: self.matcher.peek_unexpected(src, tag) is not None,
            timeout_ns)
        if not ok:
            return None
        msg = self.matcher.peek_unexpected(src, tag)
        count = msg.size if msg.is_rts else len(msg.payload)
        return Status(source=msg.src, tag=msg.tag, count=count)
