"""Cluster topologies: who is wired to whom.

A topology owns the :class:`~repro.fabric.link.Link` objects and answers
``path(src, dst)`` — the ordered list of directed links a chunk traverses.
Provided shapes:

- :class:`Star` — every rank has one uplink to a central switch and one
  downlink from it (the InfiniBand single-switch testbed shape).  Incast
  congestion shows up on the victim's downlink.
- :class:`Torus2D` — ranks on an R×C wrap-around grid, dimension-order
  (X then Y) routing over per-hop links (the Cray Gemini shape).  Path
  length, and therefore latency, grows with Manhattan distance.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..sim.core import Environment, SimulationError
from ..sim.trace import Counters
from .link import Chunk, Link
from .params import LinkParams

__all__ = ["Topology", "Star", "Torus2D", "make_topology"]


class Topology:
    """Base class; concrete topologies populate ``_links``."""

    def __init__(self, env: Environment, n: int, link_params: LinkParams,
                 counters: Counters, rng=None):
        if n < 1:
            raise SimulationError("topology needs at least one rank")
        self.env = env
        self.n = n
        self.link_params = link_params
        self.counters = counters
        self.rng = rng
        self._sinks: Dict[int, Callable[[Chunk], None]] = {}
        #: active partition cut: ordered (src, dst) pairs whose traffic is
        #: discarded at delivery.  Empty on every un-chaosed run, so the
        #: ``if self._cut`` guard in :meth:`deliver` is trace-neutral.
        self._cut: Set[Tuple[int, int]] = set()

    def _link_rng(self, name: str):
        """Per-link fault stream (only materialised on lossy fabrics)."""
        if self.link_params.drop_rate <= 0.0 or self.rng is None:
            return None
        return self.rng.stream(f"link.{name}")

    # -- wiring ---------------------------------------------------------------
    def attach(self, rank: int, sink: Callable[[Chunk], None]) -> None:
        """Register the ingress handler (NIC) for ``rank``."""
        self._sinks[rank] = sink

    def deliver(self, rank: int, chunk: Chunk) -> None:
        if self._cut and (chunk.msg.src, rank) in self._cut:
            self.counters.add("fabric.partition_drops")
            return
        sink = self._sinks.get(rank)
        if sink is None:
            raise SimulationError(f"no NIC attached at rank {rank}")
        sink(chunk)

    # -- partitions -------------------------------------------------------------
    def partition(self, group_a: Iterable[int],
                  group_b: Iterable[int]) -> None:
        """Cut all traffic between ``group_a`` and ``group_b``, both ways.

        The cut acts at the delivery point (the last hop into the
        destination NIC), so in-flight chunks that reach a cut rank after
        the partition starts are also discarded — a partition severs the
        fabric, it does not merely stop new injections.
        """
        a, b = list(group_a), list(group_b)
        for src in a:
            for dst in b:
                if src != dst:
                    self._cut.add((src, dst))
                    self._cut.add((dst, src))
        self.counters.add("fabric.partition_events")

    def heal(self, group_a: Optional[Iterable[int]] = None,
             group_b: Optional[Iterable[int]] = None) -> None:
        """Remove a cut (or, with no arguments, every cut)."""
        if group_a is None or group_b is None:
            if self._cut:
                self._cut.clear()
                self.counters.add("fabric.heal_events")
            return
        a, b = list(group_a), list(group_b)
        for src in a:
            for dst in b:
                self._cut.discard((src, dst))
                self._cut.discard((dst, src))
        self.counters.add("fabric.heal_events")

    def reachable(self, src: int, dst: int) -> bool:
        """False while a partition cuts the ordered pair ``src -> dst``."""
        return not self._cut or (src, dst) not in self._cut

    # -- observability ----------------------------------------------------------
    def iter_links(self) -> List[Link]:
        """Every link this topology owns (for per-link stats reporting)."""
        raise NotImplementedError

    def link(self, name: str) -> Link:
        """Look up a link by name (chaos targets links by name)."""
        for lk in self.iter_links():
            if lk.name == name:
                return lk
        raise SimulationError(f"no link named {name!r}")

    # -- routing ----------------------------------------------------------------
    def path(self, src: int, dst: int) -> List[Link]:
        raise NotImplementedError

    def path_latency_ns(self, src: int, dst: int) -> int:
        """Pure propagation latency along path(src, dst) (no queueing)."""
        return sum(link.latency_ns for link in self.path(src, dst))

    def hops(self, src: int, dst: int) -> int:
        return len(self.path(src, dst))

    def _check_pair(self, src: int, dst: int) -> None:
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise SimulationError(f"rank pair ({src}, {dst}) out of range")
        if src == dst:
            raise SimulationError("no path from a rank to itself")


class Star(Topology):
    """Single-switch star; switch forwarding delay folds into downlinks."""

    def __init__(self, env: Environment, n: int, link_params: LinkParams,
                 counters: Counters, switch_latency_ns: int = 150, rng=None):
        super().__init__(env, n, link_params, counters, rng)
        self.switch_latency_ns = switch_latency_ns
        self.uplinks: List[Link] = []
        self.downlinks: List[Link] = []
        for r in range(n):
            self.uplinks.append(
                Link(env, link_params, f"up{r}", counters,
                     rng=self._link_rng(f"up{r}")))
            down = Link(env, link_params, f"down{r}", counters,
                        extra_latency_ns=switch_latency_ns,
                        rng=self._link_rng(f"down{r}"))
            down.sink = lambda chunk, rank=r: self.deliver(rank, chunk)
            self.downlinks.append(down)

    def iter_links(self) -> List[Link]:
        return self.uplinks + self.downlinks

    def path(self, src: int, dst: int) -> List[Link]:
        self._check_pair(src, dst)
        return [self.uplinks[src], self.downlinks[dst]]


class Torus2D(Topology):
    """R×C wrap-around grid with dimension-order (X-then-Y) routing."""

    def __init__(self, env: Environment, n: int, link_params: LinkParams,
                 counters: Counters, rows: int = 0, cols: int = 0, rng=None):
        super().__init__(env, n, link_params, counters, rng)
        if rows and cols:
            if rows * cols != n:
                raise SimulationError(f"{rows}x{cols} != {n} ranks")
        else:
            rows, cols = _near_square(n)
        self.rows, self.cols = rows, cols
        # Directed link between each pair of grid neighbours, plus an
        # ejection hop per node that carries the chunk into the NIC.
        self._hop: Dict[Tuple[int, int], Link] = {}
        self._eject: List[Link] = []
        for r in range(n):
            for nb in self._neighbours(r):
                self._hop[(r, nb)] = Link(
                    env, link_params, f"hop{r}-{nb}", counters,
                    rng=self._link_rng(f"hop{r}-{nb}"))
            eject = Link(env, link_params, f"eject{r}", counters,
                         extra_latency_ns=0,
                         rng=self._link_rng(f"eject{r}"))
            eject.sink = lambda chunk, rank=r: self.deliver(rank, chunk)
            self._eject.append(eject)
        self._paths: Dict[Tuple[int, int], List[Link]] = {}

    def _coords(self, rank: int) -> Tuple[int, int]:
        return rank // self.cols, rank % self.cols

    def _rank(self, row: int, col: int) -> int:
        return (row % self.rows) * self.cols + (col % self.cols)

    def _neighbours(self, rank: int) -> List[int]:
        row, col = self._coords(rank)
        out = []
        for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
            nb = self._rank(row + dr, col + dc)
            if nb != rank and nb not in out:
                out.append(nb)
        return out

    def iter_links(self) -> List[Link]:
        return [self._hop[key] for key in sorted(self._hop)] + self._eject

    @staticmethod
    def _steps(delta: int, extent: int) -> List[int]:
        """Signed unit steps along one dimension, shortest wrap direction."""
        if delta == 0:
            return []
        forward = delta % extent
        backward = extent - forward
        if forward <= backward:
            return [1] * forward
        return [-1] * backward

    def path(self, src: int, dst: int) -> List[Link]:
        self._check_pair(src, dst)
        cached = self._paths.get((src, dst))
        if cached is not None:
            return cached
        srow, scol = self._coords(src)
        drow, dcol = self._coords(dst)
        links: List[Link] = []
        row, col = srow, scol
        for step in self._steps(dcol - scol, self.cols):
            nxt = self._rank(row, col + step)
            links.append(self._hop[(self._rank(row, col), nxt)])
            col = (col + step) % self.cols
        for step in self._steps(drow - srow, self.rows):
            nxt = self._rank(row + step, col)
            links.append(self._hop[(self._rank(row, col), nxt)])
            row = (row + step) % self.rows
        links.append(self._eject[dst])
        self._paths[(src, dst)] = links
        return links


def _near_square(n: int) -> Tuple[int, int]:
    """Factor n into (rows, cols) as close to square as possible."""
    best = (1, n)
    r = 1
    while r * r <= n:
        if n % r == 0:
            best = (r, n // r)
        r += 1
    return best


def make_topology(kind: str, env: Environment, n: int,
                  link_params: LinkParams, counters: Counters,
                  rng=None) -> Topology:
    """Build a topology by preset name ("star" or "torus2d")."""
    if kind == "star":
        return Star(env, n, link_params, counters, rng=rng)
    if kind == "torus2d":
        return Torus2D(env, n, link_params, counters, rng=rng)
    raise SimulationError(f"unknown topology kind {kind!r}")
