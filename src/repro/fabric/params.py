"""Hardware parameter sets for the simulated fabric.

The parameters follow the LogGP tradition: fixed per-operation overheads
(``o``-like costs at host and NIC), per-byte costs (link/DMA bandwidths) and
per-hop latencies.  Presets approximate the platforms Photon was evaluated
on — InfiniBand FDR/EDR clusters and a Cray Gemini torus — plus a RoCE and a
slow-Ethernet ("sw backend") profile.  Absolute values are calibrated to
public microbenchmark figures for those fabrics (e.g. ~1 µs small-message
RDMA latency on FDR); the reproduction's claims rest on *relative* behaviour,
which depends only on the cost structure, not on these exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = [
    "LinkParams",
    "NicParams",
    "HostParams",
    "FabricParams",
    "PRESETS",
    "preset",
]


@dataclass(frozen=True)
class LinkParams:
    """One directed link (NIC<->switch port or torus hop)."""

    #: usable bandwidth, Gbit/s
    bandwidth_gbps: float
    #: propagation + forwarding latency per traversal, ns
    latency_ns: int
    #: maximum transmission unit, bytes (messages are chunked to this)
    mtu: int
    #: per-packet wire header (routing + CRC), bytes, added to every chunk
    header_bytes: int = 30
    #: probability a chunk is corrupted/dropped in flight.  What happens
    #: next depends on ``loss_mode``:
    #:
    #: - ``"reliable"`` (default): the link-level transport recovers the
    #:   chunk in place (go-back-N style) at ``retransmit_ns`` plus a fresh
    #:   serialisation — data is never lost, only delayed.  No error ever
    #:   reaches the verbs layer.
    #: - ``"lossy"``: the chunk is genuinely discarded.  Recovery (if any)
    #:   happens end-to-end in the NIC's ack-timeout/retry machinery
    #:   (``NicParams.ack_timeout_ns`` / ``transport_retries``); exhaustion
    #:   surfaces as a ``WCStatus.RETRY_EXC_ERR`` work completion.
    #:
    #: 0 = clean in either mode.
    drop_rate: float = 0.0
    #: recovery penalty per dropped chunk in "reliable" mode (timeout +
    #: retransmit), ns
    retransmit_ns: int = 12_000
    #: "reliable" (delay-only recovery at the link) or "lossy" (genuine
    #: drops, end-to-end recovery at the NIC)
    loss_mode: str = "reliable"


@dataclass(frozen=True)
class NicParams:
    """Per-NIC processing costs and engine configuration."""

    #: host CPU cost to build + post one work request (ns)
    post_overhead_ns: int
    #: doorbell ring → NIC observes the WQE (ns)
    doorbell_ns: int
    #: NIC processing per work request (ns)
    wqe_process_ns: int
    #: host CPU cost to reap one completion from a CQ (ns)
    cqe_poll_ns: int
    #: NIC-side cost to deliver one inbound message end (placement+CQE) (ns)
    delivery_ns: int
    #: host<->NIC DMA bandwidth, Gbit/s (source fetch / sink placement)
    dma_gbps: float
    #: payloads <= this are carried in the WQE itself — no source DMA fetch
    max_inline: int
    #: round-trip ack contribution to sender-side completion (ns); the model
    #: also adds the return-path latency
    ack_overhead_ns: int
    #: cost of one remote atomic at the responder (ns)
    atomic_ns: int
    #: messages larger than this switch to the bulk engine (uGNI BTE flavour);
    #: None disables the distinction (verbs flavour)
    bulk_threshold: Optional[int] = None
    #: one-time startup cost when the bulk engine is used (ns)
    bulk_startup_ns: int = 0
    #: how many chunks may sit in the first-hop queue before the send engine
    #: blocks (models shallow NIC FIFOs; provides backpressure)
    inject_depth: int = 4
    #: penalty charged when a message arrives before a receive is posted
    #: (receiver-not-ready retry, ns); well-behaved middleware never pays it
    rnr_retry_ns: int = 5000
    #: lossy mode: grace period beyond the expected round trip before the
    #: send engine declares a message un-acked and retransmits (ns)
    ack_timeout_ns: int = 25_000
    #: lossy mode: how many retransmissions of a message the NIC attempts
    #: before completing its work request with RETRY_EXC_ERR
    transport_retries: int = 3


@dataclass(frozen=True)
class HostParams:
    """Host memory-system costs."""

    #: host memcpy bandwidth, Gbit/s (bounce-buffer copies, unpacking)
    memcpy_gbps: float
    #: fixed cost of a memory-registration (pin) syscall (ns)
    reg_base_ns: int
    #: additional pin cost per page (ns)
    reg_per_page_ns: int
    #: page size (bytes)
    page_size: int = 4096
    #: fixed cost to deregister (ns)
    dereg_ns: int = 800


@dataclass(frozen=True)
class FabricParams:
    """Complete parameter set for one cluster."""

    name: str
    link: LinkParams
    nic: NicParams
    host: HostParams
    #: default topology kind for this preset: "star", "mesh", "torus2d"
    topology: str = "star"

    def with_overrides(self, **kw) -> "FabricParams":
        """Copy with top-level or nested overrides.

        Nested fields are addressed as ``link__mtu=1024`` etc.
        """
        nested: Dict[str, Dict] = {}
        flat: Dict[str, object] = {}
        for key, value in kw.items():
            if "__" in key:
                outer, inner = key.split("__", 1)
                nested.setdefault(outer, {})[inner] = value
            else:
                flat[key] = value
        obj = self
        for outer, inner_kw in nested.items():
            obj = replace(obj, **{outer: replace(getattr(obj, outer), **inner_kw)})
        if flat:
            obj = replace(obj, **flat)
        return obj


# ---------------------------------------------------------------------------
# Presets.  See module docstring for calibration rationale.
# ---------------------------------------------------------------------------

IB_FDR = FabricParams(
    name="ib-fdr",
    link=LinkParams(bandwidth_gbps=54.0, latency_ns=250, mtu=4096),
    nic=NicParams(
        post_overhead_ns=100,
        doorbell_ns=150,
        wqe_process_ns=200,
        cqe_poll_ns=80,
        delivery_ns=100,
        dma_gbps=100.0,
        max_inline=128,
        ack_overhead_ns=150,
        atomic_ns=300,
    ),
    host=HostParams(memcpy_gbps=80.0, reg_base_ns=2000, reg_per_page_ns=180),
    topology="star",
)

IB_EDR = IB_FDR.with_overrides(
    name="ib-edr",
    link__bandwidth_gbps=97.0,
    link__latency_ns=200,
    nic__wqe_process_ns=150,
    nic__delivery_ns=80,
)

# Cray Gemini: FMA path for small transfers (low latency), BTE bulk engine
# for large (startup cost but streams well); 2-D torus topology with short
# per-hop latency.
GEMINI = FabricParams(
    name="gemini",
    link=LinkParams(bandwidth_gbps=52.0, latency_ns=105, mtu=2048,
                    header_bytes=18),
    nic=NicParams(
        post_overhead_ns=90,
        doorbell_ns=120,
        wqe_process_ns=180,
        cqe_poll_ns=80,
        delivery_ns=120,
        dma_gbps=85.0,
        max_inline=64,
        ack_overhead_ns=120,
        atomic_ns=250,
        bulk_threshold=4096,
        bulk_startup_ns=1800,
    ),
    host=HostParams(memcpy_gbps=70.0, reg_base_ns=2500, reg_per_page_ns=220),
    topology="torus2d",
)

ROCE = IB_FDR.with_overrides(
    name="roce",
    link__bandwidth_gbps=40.0,
    link__latency_ns=450,
    link__mtu=1024,
    link__header_bytes=58,
    nic__delivery_ns=180,
)

# "sw" backend stand-in: kernel TCP over 10GbE — high per-message overheads,
# no real one-sided offload (put/get emulated), used as the pessimistic
# backend in R7.
ETH_10G = FabricParams(
    name="eth-10g",
    link=LinkParams(bandwidth_gbps=9.4, latency_ns=2500, mtu=1500,
                    header_bytes=78),
    nic=NicParams(
        post_overhead_ns=1500,
        doorbell_ns=0,
        wqe_process_ns=2000,
        cqe_poll_ns=600,
        delivery_ns=2500,
        dma_gbps=40.0,
        max_inline=0,
        ack_overhead_ns=1000,
        atomic_ns=5000,
    ),
    host=HostParams(memcpy_gbps=60.0, reg_base_ns=0, reg_per_page_ns=0),
    topology="star",
)

PRESETS: Dict[str, FabricParams] = {
    p.name: p for p in (IB_FDR, IB_EDR, GEMINI, ROCE, ETH_10G)
}


def preset(name: str) -> FabricParams:
    """Look up a preset by name (raises KeyError with the known names)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown fabric preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
