"""Per-rank host memory with a pinning (registration) cost model.

Memory is a real ``bytearray``: every simulated RDMA operation moves real
bytes, so tests can assert payload integrity end-to-end.  Addresses are
byte offsets into the rank's flat space, handed out by a bump allocator.

Registration ("pinning") mirrors the cost structure of ``ibv_reg_mr``: a
fixed syscall cost plus a per-page cost.  The Memory object only *computes*
costs; callers (verbs layer, registration cache) charge them on the event
loop so the accounting lives where the time is spent.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Counter as CounterT

from ..sim.core import SimulationError
from .params import HostParams

__all__ = ["Memory", "MemoryError_", "OutOfMemory"]


class MemoryError_(SimulationError):
    """Bad address/range passed to a memory operation."""


class OutOfMemory(SimulationError):
    """The bump allocator ran out of simulated memory."""


class Memory:
    """Flat byte-addressable memory for one simulated rank."""

    def __init__(self, size: int, host: HostParams, rank: int = -1):
        if size <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size
        self.host = host
        self.rank = rank
        self.data = bytearray(size)
        self._brk = 0
        #: page -> number of registrations pinning it.  Refcounted so
        #: overlapping MRs (the registration cache merges and splits
        #: regions) account correctly: a page stays pinned until the last
        #: registration covering it is dropped.
        self._pinned_pages: CounterT[int] = Counter()

    # -- allocation ----------------------------------------------------------
    def alloc(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size <= 0:
            raise MemoryError_(f"alloc of non-positive size {size}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise MemoryError_(f"alignment {align} is not a power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        if base + size > self.size:
            raise OutOfMemory(
                f"rank {self.rank}: alloc({size}) exceeds {self.size}-byte heap")
        self._brk = base + size
        return base

    @property
    def bytes_allocated(self) -> int:
        return self._brk

    # -- access ---------------------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if length < 0:
            raise MemoryError_(f"negative length {length}")
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(
                f"rank {self.rank}: access [{addr}, {addr + length}) outside "
                f"[0, {self.size})")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self.data[addr:addr + length])

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, int(value & (2 ** 64 - 1)).to_bytes(8, "little"))

    # -- pinning cost model -----------------------------------------------------
    def _page_range(self, addr: int, length: int) -> range:
        page = self.host.page_size
        first = addr // page
        last = (addr + max(length, 1) - 1) // page
        return range(first, last + 1)

    def pages_spanned(self, addr: int, length: int) -> int:
        return len(self._page_range(addr, length))

    def pin_cost_ns(self, addr: int, length: int) -> int:
        """Cost to register [addr, addr+length): base + per *new* page."""
        self._check(addr, length)
        new_pages = sum(1 for p in self._page_range(addr, length)
                        if p not in self._pinned_pages)
        return self.host.reg_base_ns + self.host.reg_per_page_ns * new_pages

    def pin(self, addr: int, length: int) -> None:
        """Mark the pages of [addr, addr+length) pinned (cost charged by caller)."""
        self._check(addr, length)
        self._pinned_pages.update(self._page_range(addr, length))

    def unpin(self, addr: int, length: int) -> None:
        self._check(addr, length)
        for p in self._page_range(addr, length):
            n = self._pinned_pages.get(p, 0)
            if n <= 1:
                self._pinned_pages.pop(p, None)
            else:
                self._pinned_pages[p] = n - 1

    @property
    def pinned_pages(self) -> int:
        return len(self._pinned_pages)

    def memcpy_cost_ns(self, length: int) -> int:
        """Host-to-host copy cost for ``length`` bytes."""
        if length <= 0:
            return 0
        return max(1, math.ceil(length * 8.0 / self.host.memcpy_gbps))
