"""Per-rank host memory with a pinning (registration) cost model.

Memory is a real buffer: every simulated RDMA operation moves real bytes,
so tests can assert payload integrity end-to-end.  Addresses are byte
offsets into the rank's flat space, handed out by a bump allocator.

The backing store is an anonymous ``mmap`` — the kernel hands out
zero-filled pages lazily, so a 64 MiB rank costs microseconds to create
instead of a 64 MiB memset, and untouched address space never becomes
resident.  ``read`` returns a zero-copy :class:`memoryview` into that
store; callers that retain a payload across simulated time (ring slots are
recycled, scratch buffers are reused) take an owned snapshot with
:meth:`read_bytes`.

Registration ("pinning") mirrors the cost structure of ``ibv_reg_mr``: a
fixed syscall cost plus a per-page cost.  The Memory object only *computes*
costs; callers (verbs layer, registration cache) charge them on the event
loop so the accounting lives where the time is spent.
"""

from __future__ import annotations

import math
import mmap
import struct
from collections import Counter
from typing import Counter as CounterT

from ..sim.core import SimulationError
from .params import HostParams

__all__ = ["Memory", "MemoryError_", "OutOfMemory"]

_U64 = struct.Struct("<Q")


class MemoryError_(SimulationError):
    """Bad address/range passed to a memory operation."""


class OutOfMemory(SimulationError):
    """The bump allocator ran out of simulated memory."""


class Memory:
    """Flat byte-addressable memory for one simulated rank."""

    def __init__(self, size: int, host: HostParams, rank: int = -1):
        if size <= 0:
            raise MemoryError_("memory size must be positive")
        self.size = size
        self.host = host
        self.rank = rank
        # anonymous mapping: zero-initialised like the old bytearray, but
        # pages materialise on first touch instead of one up-front memset
        self._mm = mmap.mmap(-1, size)
        self.data = memoryview(self._mm)
        self._brk = 0
        #: bumped when a mutation touches a watched range (or on reset).
        #: Pollers that watch memory-resident structures (ledger rings)
        #: compare it to skip re-scanning when nothing relevant landed
        #: since their last look — see :meth:`watch`.
        self.watch_version = 0
        self._watch_ranges: set = set()
        self._watch_list: list = []
        # envelope over all watched ranges: one compare rejects most writes
        self._watch_lo = self.size
        self._watch_hi = 0
        #: page -> number of registrations pinning it.  Refcounted so
        #: overlapping MRs (the registration cache merges and splits
        #: regions) account correctly: a page stays pinned until the last
        #: registration covering it is dropped.
        self._pinned_pages: CounterT[int] = Counter()

    # -- allocation ----------------------------------------------------------
    def alloc(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes; returns the base address."""
        if size <= 0:
            raise MemoryError_(f"alloc of non-positive size {size}")
        if align <= 0 or (align & (align - 1)) != 0:
            raise MemoryError_(f"alignment {align} is not a power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        if base + size > self.size:
            raise OutOfMemory(
                f"rank {self.rank}: alloc({size}) exceeds {self.size}-byte heap")
        self._brk = base + size
        return base

    @property
    def bytes_allocated(self) -> int:
        return self._brk

    def reset(self) -> None:
        """Crash semantics: contents and pins are lost; the allocation map
        survives (a restarted rank re-arms its structures in place, as if
        the same binary re-ran the same allocation sequence)."""
        if self._brk:
            self._mm[:self._brk] = b"\x00" * self._brk
        self._pinned_pages.clear()
        self.watch_version += 1

    # -- access ---------------------------------------------------------------
    def _check(self, addr: int, length: int) -> None:
        if length < 0:
            raise MemoryError_(f"negative length {length}")
        if addr < 0 or addr + length > self.size:
            raise MemoryError_(
                f"rank {self.rank}: access [{addr}, {addr + length}) outside "
                f"[0, {self.size})")

    def watch(self, addr: int, length: int) -> None:
        """Register [addr, addr+length) as a watched range.

        Any later mutation intersecting a watched range bumps
        :attr:`watch_version`; pollers snapshot the counter to skip
        re-reading structures nothing has written to.  Re-registering an
        identical range (ring re-arm after a crash) is a no-op.
        """
        self._check(addr, length)
        r = (addr, addr + length)
        if r in self._watch_ranges:
            return
        self._watch_ranges.add(r)
        self._watch_list.append(r)
        if r[0] < self._watch_lo:
            self._watch_lo = r[0]
        if r[1] > self._watch_hi:
            self._watch_hi = r[1]
        self.watch_version += 1

    def _touch(self, addr: int, end: int) -> None:
        if addr < self._watch_hi and end > self._watch_lo:
            for lo, hi in self._watch_list:
                if addr < hi and end > lo:
                    self.watch_version += 1
                    return

    def read(self, addr: int, length: int) -> memoryview:
        """Zero-copy view of [addr, addr+length).

        The view aliases live memory: it reflects later writes to the same
        range.  Callers that keep the payload across simulated time (or
        across a buffer reuse) must snapshot with :meth:`read_bytes`.
        """
        self._check(addr, length)
        return self.data[addr:addr + length]

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Owned ``bytes`` copy of [addr, addr+length)."""
        self._check(addr, length)
        return bytes(self.data[addr:addr + length])

    def write(self, addr: int, payload) -> None:
        """Copy ``payload`` (any buffer: bytes/bytearray/memoryview) into
        memory at ``addr``.  The range is validated *before* any byte
        lands, so a rejected write never mutates memory."""
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            payload = memoryview(payload)
        n = len(payload)
        self._check(addr, n)
        if isinstance(payload, memoryview) and payload.obj is self._mm:
            # self-aliasing copy (e.g. loopback into an overlapping range):
            # snapshot the source first — slice assignment between
            # overlapping views of one mmap is not defined to memmove
            payload = payload.tobytes()
        self.data[addr:addr + n] = payload
        if addr < self._watch_hi:
            self._touch(addr, addr + n)

    def read_u64(self, addr: int) -> int:
        self._check(addr, 8)
        return _U64.unpack_from(self.data, addr)[0]

    def write_u64(self, addr: int, value: int) -> None:
        self._check(addr, 8)
        _U64.pack_into(self.data, addr, value & 0xFFFFFFFFFFFFFFFF)
        if addr < self._watch_hi:
            self._touch(addr, addr + 8)

    # -- pinning cost model -----------------------------------------------------
    def _page_range(self, addr: int, length: int) -> range:
        page = self.host.page_size
        first = addr // page
        last = (addr + max(length, 1) - 1) // page
        return range(first, last + 1)

    def pages_spanned(self, addr: int, length: int) -> int:
        return len(self._page_range(addr, length))

    def pin_cost_ns(self, addr: int, length: int) -> int:
        """Cost to register [addr, addr+length): base + per *new* page."""
        self._check(addr, length)
        new_pages = sum(1 for p in self._page_range(addr, length)
                        if p not in self._pinned_pages)
        return self.host.reg_base_ns + self.host.reg_per_page_ns * new_pages

    def pin(self, addr: int, length: int) -> None:
        """Mark the pages of [addr, addr+length) pinned (cost charged by caller)."""
        self._check(addr, length)
        self._pinned_pages.update(self._page_range(addr, length))

    def unpin(self, addr: int, length: int) -> None:
        self._check(addr, length)
        for p in self._page_range(addr, length):
            n = self._pinned_pages.get(p, 0)
            if n <= 1:
                self._pinned_pages.pop(p, None)
            else:
                self._pinned_pages[p] = n - 1

    @property
    def pinned_pages(self) -> int:
        return len(self._pinned_pages)

    def memcpy_cost_ns(self, length: int) -> int:
        """Host-to-host copy cost for ``length`` bytes."""
        if length <= 0:
            return 0
        return max(1, math.ceil(length * 8.0 / self.host.memcpy_gbps))
