"""Directed links and the chunk pipeline.

A :class:`Link` is a directed pipe with finite bandwidth, fixed latency and
a small input queue.  Messages are segmented by the NIC into :class:`Chunk`
objects (≈ MTU-sized packets); each link runs a server process that
serialises chunks at link bandwidth and forwards them after the propagation
latency.  Because every link buffers and serialises independently, chunks
pipeline across multi-hop paths (cut-through behaviour) and contention on a
shared hop (e.g. the destination's downlink during an incast) emerges
naturally from queueing.

Event economy: the clean server drains a whole back-to-back burst of
queued chunks in one go and schedules **one** serialisation event for the
burst; per-chunk exit times are reconstructed arithmetically (chunk *i*
finishes at ``t0 + ser_1 + ... + ser_i``) and each delivery is a single
raw timer callback instead of a spawned process.  The inbox's occupancy
semantics are preserved exactly via :meth:`~repro.sim.resources.Store.
set_holds` — a producer blocked on a full queue is admitted at the same
simulated instant as under per-chunk draining.  Chaos/gray modes and
faulty (drop-rate) links fall back to per-chunk serving, which keeps
their RNG draw order and drop points identical to the historical model.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, List, Optional

from ..sim.core import Environment
from ..sim.resources import Store
from ..sim.trace import Counters
from ..util.units import serialization_ns
from .params import LinkParams

__all__ = ["Chunk", "Link", "LinkChaos"]


class LinkChaos:
    """Gray-failure state armed on a link by the chaos controller.

    A link with chaos armed is still *alive* (unless ``up`` is False):
    it serialises and propagates chunks, just worse — higher latency,
    a fraction of its bandwidth, jittered propagation.  Each mode draws
    from its own RNG stream (``rng``, used only for jitter), so arming
    one mode never perturbs draws consumed by another link or mode.
    """

    __slots__ = ("up", "latency_add_ns", "bw_scale", "jitter_ns", "rng")

    def __init__(self, up: bool = True, latency_add_ns: int = 0,
                 bw_scale: float = 1.0, jitter_ns: int = 0, rng=None):
        self.up = up
        self.latency_add_ns = int(latency_add_ns)
        self.bw_scale = float(bw_scale)
        self.jitter_ns = int(jitter_ns)
        self.rng = rng

    def is_neutral(self) -> bool:
        return (self.up and self.latency_add_ns == 0
                and self.bw_scale == 1.0 and self.jitter_ns == 0)


class Chunk:
    """One packet of a wire message traversing a path of links."""

    __slots__ = ("msg", "offset", "size", "wire_bytes", "is_first", "is_last",
                 "path", "hop", "data")

    def __init__(self, msg, offset: int, size: int, wire_bytes: int,
                 is_first: bool, is_last: bool, path: List["Link"]):
        self.msg = msg
        self.offset = offset
        self.size = size
        self.wire_bytes = wire_bytes
        self.is_first = is_first
        self.is_last = is_last
        self.path = path
        self.hop = 0
        #: actual payload bytes (filled by the sender's DMA fetch)
        self.data: bytes = b""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Chunk off={self.offset} size={self.size} "
                f"hop={self.hop}/{len(self.path)}>")


class Link:
    """One directed link with its own serialisation server.

    ``deliver`` on the last hop hands the chunk to the destination NIC's
    ingress handler (set via :meth:`Link.__init__`'s sink or chunk path
    construction by the topology).
    """

    def __init__(self, env: Environment, params: LinkParams, name: str,
                 counters: Optional[Counters] = None, queue_depth: int = 16,
                 extra_latency_ns: int = 0, rng=None):
        self.env = env
        self.params = params
        self.name = name
        self.counters = counters or Counters()
        self.latency_ns = params.latency_ns + extra_latency_ns
        #: deterministic fault stream (set by the topology when the link
        #: parameters specify a non-zero drop_rate)
        self.rng = rng
        #: gray-failure state (None until a chaos controller arms it);
        #: checked with a plain ``is not None`` so unarmed runs draw no
        #: extra RNG values and take no extra simulated time
        self.chaos: Optional[LinkChaos] = None
        self.inbox: Store = Store(env, capacity=queue_depth)
        #: called with the chunk when it exits this link *and* this link is
        #: the last hop of the chunk's path; set by the topology.
        self.sink: Optional[Callable[[Chunk], None]] = None
        self._busy_ns = 0
        # per-link tallies (the counters above are fabric-wide)
        self._chunks = 0
        self._bytes = 0
        self._drops = 0
        env.process(self._server(), name=f"link:{name}")

    def arm_chaos(self, chaos: Optional[LinkChaos]) -> None:
        """Install (or clear, with ``None``) gray-failure state."""
        self.chaos = None if chaos is not None and chaos.is_neutral() \
            else chaos

    def occupancy_ns(self) -> int:
        """Total time this link spent serialising (utilisation numerator)."""
        return self._busy_ns

    def stats(self) -> dict:
        """JSON-serializable per-link tallies (fabric section of reports)."""
        return {"name": self.name, "chunks": self._chunks,
                "bytes": self._bytes, "drops": self._drops,
                "busy_ns": self._busy_ns, "latency_ns": self.latency_ns}

    def _server(self):
        # ``rng`` is assigned once at construction (only when the link was
        # built with a non-zero drop_rate), so the clean/faulty decision can
        # be made once instead of per chunk.  ``drop_rate`` itself can be
        # toggled mid-run by fault-injection harnesses, hence the faulty
        # variant still re-checks it per chunk.
        if self.rng is None:
            yield from self._server_clean()
        else:
            yield from self._server_faulty()

    def _server_clean(self):
        env = self.env
        inbox = self.inbox
        items = inbox.items
        inbox_get = inbox.get
        timeout = env.timeout
        counters = self.counters
        bw = self.params.bandwidth_gbps
        lat = self.latency_ns
        deliver = self._deliver
        bounded = inbox.capacity is not None
        # ``end`` is the wire's virtually-committed busy-until time: the
        # server never sleeps through a serialisation, it just extends the
        # schedule arithmetically and arms one delivery timer per chunk.
        end = 0
        try_get = inbox.try_get
        while True:
            if inbox._put_queue and end > env.now:
                # saturated queue: a parked producer must be admitted
                # exactly when the wire schedule frees its slot, so fall
                # back to per-chunk cadence until the backlog clears
                yield timeout(end - env.now)
            chunk: Chunk = try_get()
            if chunk is None:
                chunk = yield inbox_get()
            chaos = self.chaos
            if chaos is not None:
                # gray failure armed: revert to per-chunk serving, but
                # first let the virtually-committed backlog clear the wire
                # so serialisations stay strictly sequential
                if end > env.now:
                    yield timeout(end - env.now)
                if not chaos.up:
                    self._drops += 1
                    counters.add("link.chaos_drops")
                    continue
                ser = serialization_ns(chunk.wire_bytes,
                                       bw * chaos.bw_scale)
                self._busy_ns += ser
                self._chunks += 1
                self._bytes += chunk.wire_bytes
                counters.add("link.chunks")
                counters.add("link.bytes", chunk.wire_bytes)
                yield timeout(ser)
                end = env.now
                # Propagation overlaps with serialising the next chunk.
                env.process(self._propagate(chunk), name=f"prop:{self.name}")
                continue
            now = env.now
            if items and not inbox._put_queue:
                # back-to-back burst: drain it in one go (no per-item
                # StoreGet events)
                burst = [chunk]
                burst.extend(items)
                items.clear()
            else:
                burst = (chunk,)
            # Chunk i starts serialising when the wire frees up and exits
            # at start + ser_i; delivery at exit + latency via one raw
            # timer callback (no per-chunk process or serialisation sleep).
            t = start0 = end if end > now else now
            nbytes = 0
            holds = None
            for c in burst:
                if t > now and bounded:
                    # occupancy contract: under one-at-a-time serving this
                    # chunk would leave the queue only at its serialisation
                    # start — keep its slot virtually occupied until then
                    if holds is None:
                        holds = [t]
                    else:
                        holds.append(t)
                t += serialization_ns(c.wire_bytes, bw)
                nbytes += c.wire_bytes
                dt = timeout(t + lat - now)
                dt.callbacks.append(partial(deliver, c))
            end = t
            self._busy_ns += t - start0
            self._chunks += len(burst)
            self._bytes += nbytes
            counters.add("link.chunks", len(burst))
            counters.add("link.bytes", nbytes)
            if holds is not None:
                inbox.add_holds(holds)

    def _deliver(self, chunk: Chunk, _ev) -> None:
        """Timer callback: chunk exits this link (batched fast path)."""
        chaos = self.chaos
        if chaos is not None and not chaos.up:
            # the link went dark after this chunk's burst was committed:
            # per-chunk serving would have dropped it at the server, so
            # drop it here rather than leak traffic across a partition
            self._drops += 1
            self.counters.add("link.chaos_drops")
            return
        chunk.hop += 1
        if chunk.hop < len(chunk.path):
            nxt = chunk.path[chunk.hop]
            # fire-and-forget put: admission order and backpressure are
            # enforced by the store's FIFO put queue, and nothing ever
            # waited on the old propagate process either
            nxt.inbox.put_discard(chunk)
        else:
            if self.sink is None:
                raise RuntimeError(f"link {self.name}: no sink at end of path")
            self.sink(chunk)

    def _server_faulty(self):
        env = self.env
        inbox_get = self.inbox.get
        timeout = env.timeout
        counters = self.counters
        # ``params`` is a frozen dataclass, but fault-injection harnesses
        # hack ``drop_rate`` mid-run via object.__setattr__ to heal the
        # fabric — so the drop knobs are re-read per chunk; only the truly
        # invariant lookups (queue, counters, bandwidth, RNG) are hoisted.
        params = self.params
        bw0 = params.bandwidth_gbps
        rng_random = self.rng.random
        while True:
            chunk: Chunk = yield inbox_get()
            bw = bw0
            chaos = self.chaos
            if chaos is not None:
                if not chaos.up:
                    self._drops += 1
                    counters.add("link.chaos_drops")
                    continue
                bw *= chaos.bw_scale
            ser = serialization_ns(chunk.wire_bytes, bw)
            drop_rate = params.drop_rate
            if drop_rate > 0.0:
                if params.loss_mode == "lossy":
                    # genuine loss: the chunk still occupies the wire for
                    # its serialisation time, then vanishes.  Recovery (if
                    # any) is end-to-end at the sending NIC.
                    if rng_random() < drop_rate:
                        self._drops += 1
                        counters.add("link.drops")
                        counters.add("link.lost_bytes", chunk.wire_bytes)
                        self._busy_ns += ser
                        yield timeout(ser)
                        continue
                else:
                    # reliable mode: a dropped chunk costs the recovery
                    # timeout plus a fresh serialisation before it finally
                    # goes through.  Every failed attempt occupies the wire
                    # (_busy_ns grows by ser per attempt) and the wasted
                    # bytes are tallied separately — ``link.bytes`` stays
                    # goodput-only.
                    while rng_random() < drop_rate:
                        self._drops += 1
                        counters.add("link.drops")
                        counters.add("link.retrans_bytes", chunk.wire_bytes)
                        self._busy_ns += ser
                        yield timeout(ser + params.retransmit_ns)
            self._busy_ns += ser
            self._chunks += 1
            self._bytes += chunk.wire_bytes
            counters.add("link.chunks")
            counters.add("link.bytes", chunk.wire_bytes)
            yield timeout(ser)
            # Propagation overlaps with serialising the next chunk.
            env.process(self._propagate(chunk), name=f"prop:{self.name}")

    def _propagate(self, chunk: Chunk):
        delay = self.latency_ns
        chaos = self.chaos
        if chaos is not None:
            delay += chaos.latency_add_ns
            if chaos.jitter_ns and chaos.rng is not None:
                delay += int(chaos.rng.integers(0, chaos.jitter_ns))
        yield self.env.timeout(delay)
        chunk.hop += 1
        if chunk.hop < len(chunk.path):
            nxt = chunk.path[chunk.hop]
            yield nxt.inbox.put(chunk)
        else:
            if self.sink is None:
                raise RuntimeError(f"link {self.name}: no sink at end of path")
            self.sink(chunk)
