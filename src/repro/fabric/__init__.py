"""Simulated RDMA fabric: parameters, memory, links, topologies, NICs."""

from .link import Chunk, Link
from .memory import Memory, MemoryError_, OutOfMemory
from .nic import CTRL_BYTES, Nic, WireMsg
from .params import (
    ETH_10G,
    GEMINI,
    IB_EDR,
    IB_FDR,
    PRESETS,
    ROCE,
    FabricParams,
    HostParams,
    LinkParams,
    NicParams,
    preset,
)
from .topology import Star, Topology, Torus2D, make_topology

__all__ = [
    "Chunk", "Link",
    "Memory", "MemoryError_", "OutOfMemory",
    "CTRL_BYTES", "Nic", "WireMsg",
    "ETH_10G", "GEMINI", "IB_EDR", "IB_FDR", "PRESETS", "ROCE",
    "FabricParams", "HostParams", "LinkParams", "NicParams", "preset",
    "Star", "Topology", "Torus2D", "make_topology",
]
